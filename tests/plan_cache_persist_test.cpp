/**
 * @file
 * The persistent plan cache's correctness gate.
 *
 * Three layers of guarantees, each pinned here:
 *  - cmswitch-plan-v1 round-trips exactly: for EVERY cell of the
 *    scenario matrix, compile -> serialize -> deserialize -> re-emit
 *    the JSON report and require it byte-identical to the fresh
 *    compile's report (plus the fields the report omits, like
 *    compileSeconds);
 *  - damaged artifacts never escape: truncated, bit-flipped,
 *    wrong-version, trailing-garbage and key-mismatched files are all
 *    rejected (nullptr / counted `rejected`), falling back to a clean
 *    recompile;
 *  - the disk layer composes with the in-memory PlanCache inside
 *    CompileService: a second service over a warm --cache-dir serves
 *    every unique key from disk and renders byte-identical reports.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <system_error>
#include <tuple>
#include <vector>

#include "service/artifact_io.hpp"
#include "service/disk_plan_cache.hpp"
#include "service/json_report.hpp"
#include "service/plan_fingerprint.hpp"
#include "scenario_util.hpp"

namespace cmswitch {
namespace {

namespace fs = std::filesystem;

using ::cmswitch::testing::kE2eTransformerLayers;
using ::cmswitch::testing::scenarioChip;
using ::cmswitch::testing::scenarioChipNames;
using ::cmswitch::testing::scenarioCompile;
using ::cmswitch::testing::scenarioCompilerNames;
using ::cmswitch::testing::scenarioWorkload;
using ::cmswitch::testing::scenarioWorkloadNames;

/** Fresh scratch directory under gtest's temp root, removed on exit. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path_(fs::path(::testing::TempDir())
                / ("cmswitch_" + tag + "_"
                   + std::to_string(
                         ::testing::UnitTest::GetInstance()->random_seed())
                   + "_" + std::to_string(reinterpret_cast<std::uintptr_t>(
                               this))))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    std::string str() const { return path_.string(); }
    const fs::path &path() const { return path_; }

  private:
    fs::path path_;
};

/** One cheap shared artifact for the envelope/robustness tests. */
ArtifactPtr
cheapArtifact()
{
    return scenarioCompile("tiny", "resnet18", "cmswitch");
}

/** Expect both the report bytes and the report-invisible fields to
 *  survive @p restored vs the original @p artifact. */
void
expectArtifactsEquivalent(const CompileArtifact &artifact,
                          const CompileArtifact &restored)
{
    // The acceptance criterion: byte-identical machine-readable report.
    EXPECT_EQ(renderCompileReport(artifact), renderCompileReport(restored));

    // Fields the report deliberately omits must round-trip too.
    EXPECT_EQ(artifact.key, restored.key);
    EXPECT_EQ(artifact.result.compileSeconds,
              restored.result.compileSeconds);
    EXPECT_EQ(artifact.passStats.removedOps, restored.passStats.removedOps);
    EXPECT_EQ(artifact.passStats.removedTensors,
              restored.passStats.removedTensors);
    EXPECT_EQ(artifact.validation.problems, restored.validation.problems);
    EXPECT_EQ(artifact.chip.name, restored.chip.name);
    EXPECT_EQ(artifact.chip.technology, restored.chip.technology);
    ASSERT_EQ(artifact.result.program.numSegments(),
              restored.result.program.numSegments());
    for (s64 i = 0; i < artifact.result.program.numSegments(); ++i) {
        const SegmentRecord &a =
            artifact.result.program.segments()[static_cast<std::size_t>(i)];
        const SegmentRecord &b =
            restored.result.program.segments()[static_cast<std::size_t>(i)];
        EXPECT_EQ(a.index, b.index);
        EXPECT_EQ(a.plan.computeArrays, b.plan.computeArrays);
        EXPECT_EQ(a.plan.memoryArrays, b.plan.memoryArrays);
        EXPECT_EQ(a.pipelinedBody, b.pipelinedBody);
        EXPECT_EQ(a.prologue.size(), b.prologue.size());
        EXPECT_EQ(a.body.size(), b.body.size());
        EXPECT_EQ(a.epilogue.size(), b.epilogue.size());
        EXPECT_EQ(a.plannedIntra, b.plannedIntra);
        EXPECT_EQ(a.plannedInter, b.plannedInter);
    }
}

/** Every (chip, workload, compiler) cell of the scenario matrix. */
class PlanRoundTrip
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string, std::string>>
{
};

TEST_P(PlanRoundTrip, SerializedArtifactReEmitsIdenticalReport)
{
    auto [chip_name, workload_name, compiler_name] = GetParam();
    ArtifactPtr artifact = scenarioCompile(chip_name, workload_name,
                                           compiler_name,
                                           kE2eTransformerLayers);

    std::string image = serializeCompileArtifact(*artifact);
    std::string error;
    ArtifactPtr restored = deserializeCompileArtifact(image, &error);
    ASSERT_NE(restored, nullptr) << error;
    expectArtifactsEquivalent(*artifact, *restored);

    // Serialisation must be deterministic: same artifact, same bytes.
    EXPECT_EQ(image, serializeCompileArtifact(*restored));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PlanRoundTrip,
    ::testing::Combine(::testing::ValuesIn(scenarioChipNames()),
                       ::testing::ValuesIn(scenarioWorkloadNames()),
                       ::testing::ValuesIn(scenarioCompilerNames())),
    [](const ::testing::TestParamInfo<PlanRoundTrip::ParamType> &info) {
        std::string joined = std::get<0>(info.param) + "__"
                           + std::get<1>(info.param) + "__"
                           + std::get<2>(info.param);
        for (char &c : joined)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return joined;
    });

TEST(PlanEnvelope, TruncationAtEveryRegionRejected)
{
    std::string image = serializeCompileArtifact(*cheapArtifact());
    // One cut inside each region of the envelope: the tag, the length
    // header, the digest, early payload, and one byte short of valid.
    for (std::size_t cut :
         {std::size_t{0}, std::size_t{5}, std::size_t{20}, std::size_t{30},
          std::size_t{80}, image.size() - 1}) {
        ASSERT_LT(cut, image.size());
        std::string error;
        EXPECT_EQ(deserializeCompileArtifact(image.substr(0, cut), &error),
                  nullptr)
            << "truncation at byte " << cut << " not rejected";
        EXPECT_FALSE(error.empty());
    }
}

TEST(PlanEnvelope, BitCorruptionAnywhereRejected)
{
    std::string image = serializeCompileArtifact(*cheapArtifact());
    // Flip one byte in the header and a spread of payload offsets; the
    // digest (or tag check) must catch every one of them.
    for (std::size_t at : {std::size_t{2}, std::size_t{25},
                           image.size() / 4, image.size() / 2,
                           image.size() - 2}) {
        std::string corrupt = image;
        corrupt[at] = static_cast<char>(corrupt[at] ^ 0x40);
        EXPECT_EQ(deserializeCompileArtifact(corrupt), nullptr)
            << "bit flip at byte " << at << " not rejected";
    }
}

TEST(PlanEnvelope, WrongFormatVersionRejected)
{
    std::string image = serializeCompileArtifact(*cheapArtifact());
    std::string v9 = image;
    std::size_t digit = v9.find("-v1");
    ASSERT_NE(digit, std::string::npos);
    v9[digit + 2] = '9'; // cmswitch-plan-v9: a future format
    std::string error;
    EXPECT_EQ(deserializeCompileArtifact(v9, &error), nullptr);
    EXPECT_NE(error.find("tag"), std::string::npos) << error;
}

TEST(PlanEnvelope, TrailingGarbageRejected)
{
    std::string image = serializeCompileArtifact(*cheapArtifact());
    EXPECT_EQ(deserializeCompileArtifact(image + "x"), nullptr);
}

TEST(DiskPlanCachePersist, StoreThenLoadRoundTrips)
{
    ScratchDir dir("disk_roundtrip");
    ArtifactPtr artifact = cheapArtifact();

    DiskPlanCache cache(dir.str());
    EXPECT_EQ(cache.load(artifact->key), nullptr); // cold
    cache.store(artifact->key, artifact);
    EXPECT_TRUE(fs::exists(cache.planPath(artifact->key)));

    ArtifactPtr restored = cache.load(artifact->key);
    ASSERT_NE(restored, nullptr);
    expectArtifactsEquivalent(*artifact, *restored);

    DiskPlanCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.stores, 1);
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.rejected, 0);
}

TEST(DiskPlanCachePersist, SecondCacheInstanceSeesTheFile)
{
    ScratchDir dir("disk_crossproc");
    ArtifactPtr artifact = cheapArtifact();
    DiskPlanCache(dir.str()).store(artifact->key, artifact);

    // A different instance over the same directory models a second
    // process.
    DiskPlanCache second(dir.str());
    ArtifactPtr restored = second.load(artifact->key);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(renderCompileReport(*artifact), renderCompileReport(*restored));
}

TEST(DiskPlanCachePersist, CorruptAndTruncatedFilesFallBackToMiss)
{
    ScratchDir dir("disk_corrupt");
    ArtifactPtr artifact = cheapArtifact();
    DiskPlanCache cache(dir.str());
    cache.store(artifact->key, artifact);
    std::string path = cache.planPath(artifact->key);

    {
        std::ofstream(path, std::ios::binary | std::ios::trunc)
            << "not a plan at all";
    }
    EXPECT_EQ(cache.load(artifact->key), nullptr);

    std::string image = serializeCompileArtifact(*artifact);
    {
        std::ofstream(path, std::ios::binary | std::ios::trunc)
            << image.substr(0, image.size() / 2);
    }
    EXPECT_EQ(cache.load(artifact->key), nullptr);

    DiskPlanCacheStats stats = cache.stats();
    EXPECT_EQ(stats.rejected, 2);
    EXPECT_EQ(stats.hits, 0);

    // Re-storing repairs the entry.
    cache.store(artifact->key, artifact);
    EXPECT_NE(cache.load(artifact->key), nullptr);
}

TEST(DiskPlanCachePersist, KeyMismatchedFileRejected)
{
    ScratchDir dir("disk_keymismatch");
    ArtifactPtr artifact = cheapArtifact();
    DiskPlanCache cache(dir.str());
    cache.store(artifact->key, artifact);

    // A plan copied under a different request key must not be served:
    // the embedded key is authoritative.
    std::string other_key(16, 'f');
    fs::copy_file(cache.planPath(artifact->key), cache.planPath(other_key));
    EXPECT_EQ(cache.load(other_key), nullptr);
    EXPECT_EQ(cache.stats().rejected, 1);
}

TEST(ServiceDiskCache, WarmServiceServesEveryKeyFromDisk)
{
    ScratchDir dir("service_warm");

    CompileRequest request;
    request.chip = scenarioChip("tiny");
    request.workload = scenarioWorkload("resnet18");
    request.compilerId = "cmswitch";

    CompileRequest other = request;
    other.compilerId = "puma";

    std::string cold_report, cold_other;
    {
        CompileService service({.threads = 2, .cacheCapacity = 16,
                                .cacheDir = dir.str()});
        cold_report = renderCompileReport(*service.compileNow(request));
        cold_other = renderCompileReport(*service.compileNow(other));
        CompileServiceStats stats = service.stats();
        EXPECT_EQ(stats.disk.misses, 2);
        EXPECT_EQ(stats.disk.stores, 2);
        EXPECT_EQ(stats.disk.hits, 0);
    }
    {
        CompileService service({.threads = 2, .cacheCapacity = 16,
                                .cacheDir = dir.str()});
        // submit() and compileNow() both ride the disk layer.
        std::future<ArtifactPtr> future = service.submit(request);
        EXPECT_EQ(renderCompileReport(*future.get()), cold_report);
        EXPECT_EQ(renderCompileReport(*service.compileNow(other)),
                  cold_other);
        // And an in-memory repeat does not touch the disk again.
        service.compileNow(request);
        CompileServiceStats stats = service.stats();
        EXPECT_EQ(stats.disk.hits, 2);
        EXPECT_EQ(stats.disk.misses, 0);
        EXPECT_EQ(stats.disk.stores, 0);
        EXPECT_EQ(stats.cache.hits, 1);
    }
}

/** Applies an algorithm-revision bump for one scope, then reverts it —
 *  even when an assertion fails mid-test. */
class RevisionBumpGuard
{
  public:
    RevisionBumpGuard(const char *pass, s64 delta)
        : pass_(pass), delta_(delta)
    {
        bumpAlgorithmRevisionForTesting(pass_, delta_);
    }
    ~RevisionBumpGuard() { bumpAlgorithmRevisionForTesting(pass_, -delta_); }

  private:
    const char *pass_;
    s64 delta_;
};

TEST(ServiceDiskCache, FingerprintBumpAloneForcesDiskMissThenRestore)
{
    ScratchDir dir("fingerprint");

    CompileRequest request;
    request.chip = scenarioChip("tiny");
    request.workload = scenarioWorkload("resnet18");
    request.compilerId = "cmswitch";

    const std::string original_key = requestKey(request);
    std::string cold_report;
    {
        CompileService service({.threads = 1, .cacheCapacity = 4,
                                .cacheDir = dir.str()});
        cold_report = renderCompileReport(*service.compileNow(request));
        CompileServiceStats stats = service.stats();
        EXPECT_EQ(stats.disk.misses, 1);
        EXPECT_EQ(stats.disk.stores, 1);
    }
    {
        // Bumping one pass revision — nothing else — must re-key the
        // request: the stale plan is never looked up (a clean disk
        // miss, not a rejection) and the recompile lands under the new
        // key.
        RevisionBumpGuard bump("segmenter", 1);
        const std::string bumped_key = requestKey(request);
        EXPECT_NE(bumped_key, original_key);
        CompileService service({.threads = 1, .cacheCapacity = 4,
                                .cacheDir = dir.str()});
        std::string bumped_report =
            renderCompileReport(*service.compileNow(request));
        // The bump shows up in the report's embedded key — and only
        // there: everything the compiler computed is unchanged.
        std::size_t at = bumped_report.find(bumped_key);
        ASSERT_NE(at, std::string::npos);
        bumped_report.replace(at, bumped_key.size(), original_key);
        EXPECT_EQ(bumped_report, cold_report);
        CompileServiceStats stats = service.stats();
        EXPECT_EQ(stats.disk.hits, 0);
        EXPECT_EQ(stats.disk.misses, 1);
        EXPECT_EQ(stats.disk.stores, 1);
        EXPECT_EQ(stats.disk.rejected, 0);
    }
    // Reverting the revision restores the original key, and the plan
    // stored *before* the bump serves again from disk.
    EXPECT_EQ(requestKey(request), original_key);
    {
        CompileService service({.threads = 1, .cacheCapacity = 4,
                                .cacheDir = dir.str()});
        EXPECT_EQ(renderCompileReport(*service.compileNow(request)),
                  cold_report);
        CompileServiceStats stats = service.stats();
        EXPECT_EQ(stats.disk.hits, 1);
        EXPECT_EQ(stats.disk.misses, 0);
        EXPECT_EQ(stats.disk.stores, 0);
    }
}

TEST(ServiceDiskCache, NoCacheDirMeansNoDiskLayer)
{
    CompileService service({.threads = 1, .cacheCapacity = 4, .cacheDir = ""});
    EXPECT_EQ(service.diskCache(), nullptr);
    CompileRequest request;
    request.chip = scenarioChip("tiny");
    request.workload = scenarioWorkload("resnet18");
    service.compileNow(request);
    CompileServiceStats stats = service.stats();
    EXPECT_EQ(stats.disk.hits + stats.disk.misses + stats.disk.stores, 0);
}

} // namespace
} // namespace cmswitch
