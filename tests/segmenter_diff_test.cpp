/**
 * @file
 * Differential pinning of the optimized search stack: every compiler
 * of the scenario matrix (3 chips x 4 workloads x 4 compilers) is run
 * twice — once on the fast search (flat-hash range cache, hoisted DP
 * invariants, probe-bound shortcuts, warm-started LPs) and once on the
 * retained pre-optimization path (SegmenterOptions::referenceSearch) —
 * and the two serialized CompileResults must be byte-identical. This
 * is the license for every shortcut the fast path takes: any
 * divergence, down to a single latency cycle or reuse split, fails
 * here with the first differing byte offset.
 *
 * The same cells additionally sweep the fast search across
 * searchThreads in {2, 8}: the parallel plan search (phased DP
 * batching, speculative bisection, frontier branch-and-bound) must
 * also be byte-identical to the serial fast path — the determinism
 * contract behind `cmswitchc --search-threads` and the service's
 * thread-invariant request keys.
 *
 * A final pass recompiles with full observability installed (metrics
 * registry + trace recorder): instrumentation observes, never steers,
 * so the plan must again be byte-identical — the `--trace`/`--metrics`
 * flags can never change what the compiler emits.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "obs/obs.hpp"
#include "scenario_util.hpp"
#include "support/serialize.hpp"

namespace cmswitch {
namespace {

std::string
serializedPlan(const Compiler &compiler, const Graph &graph)
{
    CompileResult result = compiler.compile(graph);
    // Wall-clock is the one legitimately nondeterministic field.
    result.compileSeconds = 0.0;
    BinaryWriter writer;
    result.writeBinary(writer);
    return writer.take();
}

/** First differing byte offset, or -1 when equal (for the message). */
s64
firstDifference(const std::string &a, const std::string &b)
{
    std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] != b[i])
            return static_cast<s64>(i);
    }
    return a.size() == b.size() ? -1 : static_cast<s64>(n);
}

class SearchDiff
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string, std::string>>
{
};

TEST_P(SearchDiff, FastAndReferenceSearchProduceIdenticalPlans)
{
    const auto &[chip_name, workload_name, compiler_name] = GetParam();
    ChipConfig chip = testing::scenarioChip(chip_name);
    Graph graph = testing::scenarioWorkload(workload_name);

    auto fast = makeCompilerByName(compiler_name, chip);
    auto reference = makeCompilerByName(compiler_name, chip,
                                        /*referenceSearch=*/true);

    std::string fast_bytes = serializedPlan(*fast, graph);
    std::string reference_bytes = serializedPlan(*reference, graph);

    EXPECT_EQ(fast_bytes.size(), reference_bytes.size());
    EXPECT_TRUE(fast_bytes == reference_bytes)
        << compiler_name << " on " << workload_name << "@" << chip_name
        << ": serialized plans diverge at byte "
        << firstDifference(fast_bytes, reference_bytes) << " of "
        << fast_bytes.size();

    // Thread sweep: the parallel search must reproduce the serial fast
    // plan byte for byte, for widths both under and well over the
    // machine's core count.
    for (s64 threads : {s64{2}, s64{8}}) {
        auto parallel = makeCompilerByName(compiler_name, chip,
                                           /*referenceSearch=*/false,
                                           threads);
        std::string parallel_bytes = serializedPlan(*parallel, graph);
        EXPECT_TRUE(parallel_bytes == fast_bytes)
            << compiler_name << " on " << workload_name << "@" << chip_name
            << " at searchThreads=" << threads
            << ": serialized plans diverge at byte "
            << firstDifference(parallel_bytes, fast_bytes) << " of "
            << fast_bytes.size();
    }

    // Observability sweep: a compile with metrics + tracing installed
    // (and the parallel search active, so the instrumented DP phases
    // and pool threads all run) must still produce the fast plan byte
    // for byte. This is the --trace/--metrics "observe, never steer"
    // contract.
    {
        obs::MetricsRegistry registry;
        obs::TraceRecorder recorder;
        obs::install(&registry, &recorder);
        auto observed = makeCompilerByName(compiler_name, chip,
                                           /*referenceSearch=*/false,
                                           /*searchThreads=*/2);
        std::string observed_bytes = serializedPlan(*observed, graph);
        obs::uninstall();
        EXPECT_TRUE(observed_bytes == fast_bytes)
            << compiler_name << " on " << workload_name << "@" << chip_name
            << " with observability installed: serialized plans diverge "
            << "at byte " << firstDifference(observed_bytes, fast_bytes)
            << " of " << fast_bytes.size();
        EXPECT_GT(recorder.eventCount(), 0);
        EXPECT_GT(registry.histogram(obs::Hist::kPhaseSegment).count(), 0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SearchDiff,
    ::testing::Combine(::testing::ValuesIn(testing::scenarioChipNames()),
                       ::testing::ValuesIn(testing::scenarioWorkloadNames()),
                       ::testing::ValuesIn(testing::scenarioCompilerNames())),
    [](const auto &info) {
        std::string name = std::get<0>(info.param) + "_"
                         + std::get<1>(info.param) + "_"
                         + std::get<2>(info.param);
        for (char &c : name) {
            if (c == '-' || c == '.')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace cmswitch
