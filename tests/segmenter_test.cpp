/** @file Tests for the DP network segmenter (Alg. 1). */

#include <gtest/gtest.h>

#include <functional>

#include "compiler/segmenter.hpp"
#include "models/model_zoo.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

SegmenterOptions
dualModeDp()
{
    SegmenterOptions o;
    o.useDp = true;
    return o;
}

TEST(Segmenter, CoversAllOpsExactlyOnce)
{
    Deha deha(testing::tinyChip(8));
    CostModel cost(deha);
    Graph g = testing::chainMlp(6);
    auto ops = flattenGraph(g, deha);

    Segmenter seg(cost, dualModeDp());
    ScheduleResult r = seg.run(ops);
    ASSERT_TRUE(r.feasible());
    s64 covered = 0;
    s64 prev_hi = 0;
    for (const SegmentDecision &d : r.segments) {
        EXPECT_EQ(d.lo, prev_hi);
        EXPECT_GT(d.hi, d.lo);
        covered += d.hi - d.lo;
        prev_hi = d.hi;
        EXPECT_LE(d.alloc.plan.total(), deha.config().numSwitchArrays);
    }
    EXPECT_EQ(covered, static_cast<s64>(ops.size()));
}

TEST(Segmenter, DpNoWorseThanGreedy)
{
    Deha deha(testing::tinyChip(8));
    CostModel cost(deha);

    for (u64 seed = 0; seed < 5; ++seed) {
        Graph g = testing::chainMlp(5 + static_cast<s64>(seed), 48, 2);
        auto ops = flattenGraph(g, deha);

        Segmenter dp(cost, dualModeDp());
        SegmenterOptions greedy_opts = dualModeDp();
        greedy_opts.useDp = false;
        Segmenter greedy(cost, greedy_opts);

        Cycles dp_total = dp.run(ops).latency.total();
        Cycles greedy_total = greedy.run(ops).latency.total();
        EXPECT_LE(dp_total, greedy_total) << "seed " << seed;
    }
}

TEST(Segmenter, DpMatchesBruteForceOnSmallChains)
{
    Deha deha(testing::tinyChip(6));
    CostModel cost(deha);
    // dim 32 => 2x2 = 4 tiles per op: fits the sub-op budget, so the
    // flattened list stays a plain chain (one edge per boundary), which
    // is what the brute-force cost replication below assumes.
    Graph g = testing::chainMlp(4, 32, 2);
    auto ops = flattenGraph(g, deha);
    const s64 n = static_cast<s64>(ops.size());
    ASSERT_EQ(n, 4);

    Segmenter dp(cost, dualModeDp());
    Cycles dp_total = dp.run(ops).latency.total();

    // Enumerate every segmentation as a bitmask of boundaries and
    // price it through the same finalize path (greedy segmenter with
    // forced ranges is not exposed, so re-run DP pieces manually).
    Cycles best = kInfCycles;
    for (s64 mask = 0; mask < (1 << (n - 1)); ++mask) {
        std::vector<std::pair<s64, s64>> ranges;
        s64 lo = 0;
        for (s64 i = 0; i < n; ++i) {
            bool cut = i + 1 == n || (mask >> i) & 1;
            if (cut) {
                ranges.emplace_back(lo, i + 1);
                lo = i + 1;
            }
        }
        // Price this segmentation by mirroring the segmenter's cost
        // accounting through the public cost-model pieces.
        DualModeAllocator alloc(cost, dualModeDp().alloc);
        bool feasible = true;
        Cycles total = 0;
        SegmentAllocation prev;
        bool has_prev = false;
        s64 prev_lo = -1;
        s64 phys = deha.config().numSwitchArrays;
        for (auto [seg_lo, seg_hi] : ranges) {
            SegmentAllocation cur =
                alloc.allocate(makeSegmentView(ops, seg_lo, seg_hi));
            if (!cur.feasible()) {
                feasible = false;
                break;
            }
            total += cur.intraLatency;
            // Switch cost.
            SwitchDelta delta = deha.switchesBetween(phys, cur.plan);
            total += deha.switchLatency(delta);
            phys = deha.applySwitches(phys, delta);
            // Rewrite cost (Eq. 2).
            std::vector<OpWorkload> ws;
            for (s64 i = seg_lo; i < seg_hi; ++i)
                ws.push_back(ops[static_cast<std::size_t>(i)].work);
            total += cost.weightRewriteLatency(ws, cur.allocs);
            // Boundary traffic: chain => the single cross edge, plus
            // network outputs at the very end.
            if (has_prev) {
                s64 edge = ops[static_cast<std::size_t>(seg_lo)]
                               .reuseBytes.empty()
                         ? 0
                         : ops[static_cast<std::size_t>(seg_lo)].reuseBytes[0];
                s64 carry_cap = deha.config().bufferBytes
                              + std::min(prev.plan.memoryArrays,
                                         cur.plan.memoryArrays)
                                    * deha.config().arrayMemoryBytes();
                s64 carried = std::min(edge, carry_cap);
                total += cost.mainMemoryTransfer(edge - carried) * 2;
            }
            (void)prev_lo;
            prev = cur;
            has_prev = true;
            prev_lo = seg_lo;
        }
        if (feasible) {
            total += cost.mainMemoryTransfer(
                ops.back().liveOutBytes); // final output store
            best = std::min(best, total);
        }
    }
    // The DP must achieve the brute-force optimum.
    EXPECT_EQ(dp_total, best);
}

TEST(Segmenter, CacheHitsOnRepeatedBlocks)
{
    Deha deha(ChipConfig::dynaplasia());
    CostModel cost(deha);
    TransformerConfig cfg = TransformerConfig::bertBase();
    cfg.layers = 4; // four identical blocks
    Graph g = buildTransformerPrefill(cfg, 1, 64);
    auto ops = flattenGraph(g, deha);

    Segmenter seg(cost, dualModeDp());
    ScheduleResult r = seg.run(ops);
    ASSERT_TRUE(r.feasible());
    // Identical per-layer segments must be served from the cache.
    EXPECT_GT(seg.cacheHits(), seg.cacheMisses());
}

TEST(Segmenter, ParallelSearchPreservesCacheCounters)
{
    // The parallel DP batches allocation misses, but its phase-A
    // bookkeeping must replicate serial cache accounting exactly: same
    // hit and miss totals for any width, not just the same plan (the
    // signature cache is observable via cacheHits/cacheMisses and via
    // Fig. 18's reuse claims). Repeated transformer blocks make the
    // counters non-trivial.
    Deha deha(ChipConfig::dynaplasia());
    CostModel cost(deha);
    TransformerConfig cfg = TransformerConfig::bertBase();
    cfg.layers = 4;
    Graph g = buildTransformerPrefill(cfg, 1, 64);
    auto ops = flattenGraph(g, deha);

    Segmenter serial(cost, dualModeDp());
    ScheduleResult serial_r = serial.run(ops);
    ASSERT_TRUE(serial_r.feasible());

    for (s64 threads : {s64{2}, s64{4}}) {
        SegmenterOptions opts = dualModeDp();
        opts.searchThreads = threads;
        Segmenter parallel(cost, opts);
        ScheduleResult r = parallel.run(ops);
        ASSERT_TRUE(r.feasible());
        EXPECT_EQ(r.latency.total(), serial_r.latency.total())
            << "searchThreads=" << threads;
        EXPECT_EQ(parallel.cacheHits(), serial.cacheHits())
            << "searchThreads=" << threads;
        EXPECT_EQ(parallel.cacheMisses(), serial.cacheMisses())
            << "searchThreads=" << threads;
    }
}

TEST(Segmenter, BreakdownComponentsNonNegative)
{
    Deha deha(ChipConfig::dynaplasia());
    CostModel cost(deha);
    Graph g = buildResNet18(1);
    auto ops = flattenGraph(g, deha);
    Segmenter seg(cost, dualModeDp());
    ScheduleResult r = seg.run(ops);
    ASSERT_TRUE(r.feasible());
    EXPECT_GT(r.latency.intra, 0);
    EXPECT_GE(r.latency.writeback, 0);
    EXPECT_GE(r.latency.modeSwitch, 0);
    EXPECT_GT(r.latency.rewrite, 0);
    EXPECT_EQ(r.latency.total(), r.latency.intra + r.latency.writeback
                                     + r.latency.modeSwitch
                                     + r.latency.rewrite);
}

TEST(Segmenter, SegmentIntraEqualsAllocLatency)
{
    Deha deha(testing::tinyChip(8));
    CostModel cost(deha);
    Graph g = testing::chainMlp(4);
    auto ops = flattenGraph(g, deha);
    Segmenter seg(cost, dualModeDp());
    ScheduleResult r = seg.run(ops);
    ASSERT_TRUE(r.feasible());
    Cycles sum = 0;
    for (const SegmentDecision &d : r.segments)
        sum += d.alloc.intraLatency;
    EXPECT_EQ(sum, r.latency.intra);
}

} // namespace
} // namespace cmswitch
