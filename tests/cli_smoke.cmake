# CLI smoke test for cmswitchc, run as `cmake -DCMSWITCHC=<exe> -P
# cli_smoke.cmake` from CTest. Checks exit codes and output shape of the
# user-facing invocations; any failed check aborts with FATAL_ERROR.

if(NOT CMSWITCHC)
    message(FATAL_ERROR "pass -DCMSWITCHC=<path to cmswitchc>")
endif()

function(expect_exit code)
    # Remaining arguments are the cmswitchc argv.
    execute_process(COMMAND ${CMSWITCHC} ${ARGN}
                    RESULT_VARIABLE result
                    OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT result EQUAL ${code})
        message(FATAL_ERROR "cmswitchc ${ARGN}: expected exit ${code}, "
                            "got '${result}'\nstdout:\n${out}\nstderr:\n${err}")
    endif()
    set(last_out "${out}" PARENT_SCOPE)
    set(last_err "${err}" PARENT_SCOPE)
endfunction()

function(expect_contains haystack_var needle)
    if(NOT "${${haystack_var}}" MATCHES "${needle}")
        message(FATAL_ERROR "expected ${haystack_var} to contain '${needle}', "
                            "got:\n${${haystack_var}}")
    endif()
endfunction()

# No arguments: usage on stderr, exit 2.
expect_exit(2)
expect_contains(last_err "usage: cmswitchc")

# Usage errors also exit 2 with a pointer at --help.
expect_exit(2 --model)
expect_contains(last_err "needs a value")
expect_exit(2 --frobnicate)
expect_contains(last_err "unknown flag")
expect_exit(2 --model resnet18 --batch abc)
expect_contains(last_err "needs an integer")
expect_exit(2 --model resnet18 --batch -1)
expect_contains(last_err "must be >= 1")

# --help / --version succeed and describe the tool.
expect_exit(0 --help)
expect_contains(last_out "usage: cmswitchc")
expect_contains(last_out "--compiler")
expect_exit(0 --version)
expect_contains(last_out "cmswitchc [0-9]+\\.[0-9]+")

# Real compile: resnet18 on the default dynaplasia chip, stats only.
expect_exit(0 --model resnet18 --chip dynaplasia --stats)
expect_contains(last_err "resnet18")
expect_contains(last_err "cycles")
expect_contains(last_err "estimated energy")

message(STATUS "cli_smoke: all checks passed")
