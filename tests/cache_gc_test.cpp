/**
 * @file
 * Unit gate for the cache lifecycle subsystem: gc LRU/byte-budget/age
 * semantics, verify's damage detection, the cross-process stats
 * sidecar, and the build/algorithm fingerprint.
 *
 * gc and stats operate on the *directory*, not on plan contents, so
 * most tests drive them with synthetic `*.plan` files of chosen sizes
 * and mtimes — no compiles, which keeps this suite tier1-fast. verify
 * does parse artifacts; it gets a real (default-constructed) artifact
 * through DiskPlanCache::store, which exercises the same
 * cmswitch-plan-v1 writer as production stores.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>

#ifdef __unix__
#include <unistd.h>
#endif

#include "service/cache_maintenance.hpp"
#include "service/compile_service.hpp"
#include "service/disk_plan_cache.hpp"
#include "service/plan_fingerprint.hpp"
#include "service/stats_sidecar.hpp"
#include "support/atomic_file.hpp"
#include "support/json.hpp"
#include "support/serialize.hpp"

namespace cmswitch {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch directory under gtest's temp root, removed on exit. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path_(fs::path(::testing::TempDir())
                / ("cmswitch_" + tag + "_"
                   + std::to_string(
                         ::testing::UnitTest::GetInstance()->random_seed())
                   + "_"
                   + std::to_string(
                         reinterpret_cast<std::uintptr_t>(this))))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    std::string str() const { return path_.string(); }
    const fs::path &path() const { return path_; }

  private:
    fs::path path_;
};

/** Write @p bytes of filler to @p name and backdate its mtime. */
void
writeFakePlan(const ScratchDir &dir, const std::string &name, s64 bytes,
              std::chrono::seconds age)
{
    fs::path path = dir.path() / name;
    std::ofstream(path, std::ios::binary)
        << std::string(static_cast<std::size_t>(bytes), 'x');
    fs::last_write_time(path, fs::file_time_type::clock::now() - age);
}

using std::chrono::minutes;
using std::chrono::seconds;

TEST(CacheGc, EvictsOldestMtimeFirstDownToByteBudget)
{
    ScratchDir dir("gc_lru");
    writeFakePlan(dir, "aaaa.plan", 100, minutes(40)); // oldest
    writeFakePlan(dir, "bbbb.plan", 100, minutes(30));
    writeFakePlan(dir, "cccc.plan", 100, minutes(20));
    writeFakePlan(dir, "dddd.plan", 100, minutes(10)); // newest

    CacheGcReport report =
        gcPlanCache({.directory = dir.str(), .maxBytes = 250});

    EXPECT_EQ(report.scannedFiles, 4);
    EXPECT_EQ(report.scannedBytes, 400);
    EXPECT_EQ(report.deletedFiles, 2);
    EXPECT_EQ(report.deletedBytes, 200);
    EXPECT_EQ(report.keptFiles, 2);
    EXPECT_EQ(report.keptBytes, 200);

    // Provably LRU: the two *oldest* went, oldest first.
    ASSERT_EQ(report.deleted.size(), 2u);
    EXPECT_EQ(report.deleted[0].file, "aaaa.plan");
    EXPECT_EQ(report.deleted[1].file, "bbbb.plan");
    EXPECT_EQ(report.deleted[0].reason, "evicted");
    EXPECT_FALSE(fs::exists(dir.path() / "aaaa.plan"));
    EXPECT_FALSE(fs::exists(dir.path() / "bbbb.plan"));
    EXPECT_TRUE(fs::exists(dir.path() / "cccc.plan"));
    EXPECT_TRUE(fs::exists(dir.path() / "dddd.plan"));
}

TEST(CacheGc, MaxAgeExpiresBeforeTheByteBudget)
{
    ScratchDir dir("gc_age");
    writeFakePlan(dir, "old.plan", 100, minutes(120));
    writeFakePlan(dir, "new.plan", 100, seconds(30));

    CacheGcReport report = gcPlanCache(
        {.directory = dir.str(), .maxBytes = -1, .maxAgeSeconds = 3600});

    EXPECT_EQ(report.deletedFiles, 1);
    ASSERT_EQ(report.deleted.size(), 1u);
    EXPECT_EQ(report.deleted[0].file, "old.plan");
    EXPECT_EQ(report.deleted[0].reason, "expired");
    EXPECT_TRUE(fs::exists(dir.path() / "new.plan"));
}

TEST(CacheGc, NoBoundsDeletesNothing)
{
    ScratchDir dir("gc_nobounds");
    writeFakePlan(dir, "aaaa.plan", 100, minutes(40));
    CacheGcReport report = gcPlanCache({.directory = dir.str()});
    EXPECT_EQ(report.deletedFiles, 0);
    EXPECT_EQ(report.keptFiles, 1);
    EXPECT_TRUE(fs::exists(dir.path() / "aaaa.plan"));
}

TEST(CacheGc, NeverDeletesTheStatsSidecar)
{
    ScratchDir dir("gc_sidecar");
    DiskPlanCacheStats delta;
    delta.hits = 7;
    delta.stores = 3;
    mergeStatsSidecar(dir.str(), delta);
    writeFakePlan(dir, "aaaa.plan", 100, minutes(10));
    writeFakePlan(dir, "bbbb.plan", 100, minutes(5));

    CacheGcReport report =
        gcPlanCache({.directory = dir.str(), .maxBytes = 0});

    // Everything *.plan is gone, the sidecar and its totals survive.
    EXPECT_EQ(report.deletedFiles, 2);
    EXPECT_EQ(report.keptFiles, 0);
    EXPECT_TRUE(fs::exists(statsSidecarPath(dir.str())));
    bool present = false;
    DiskPlanCacheStats totals = readStatsSidecar(dir.str(), &present);
    EXPECT_TRUE(present);
    EXPECT_EQ(totals.hits, 7);
    EXPECT_EQ(totals.stores, 3);
}

TEST(CacheGc, ReapsOnlyStaleWriterTempFiles)
{
    ScratchDir dir("gc_temps");
    writeFakePlan(dir, "aaaa.plan.tmp.123.1", 50, minutes(60)); // orphan
    writeFakePlan(dir, "bbbb.plan.tmp.456.2", 50, seconds(1));  // live writer
    writeFakePlan(dir, "cccc.plan", 100, minutes(1));

    CacheGcReport report =
        gcPlanCache({.directory = dir.str(), .maxBytes = 1000});

    EXPECT_EQ(report.staleTempFiles, 1);
    EXPECT_FALSE(fs::exists(dir.path() / "aaaa.plan.tmp.123.1"));
    EXPECT_TRUE(fs::exists(dir.path() / "bbbb.plan.tmp.456.2"));
    // Temp files are not artifacts: they never count against the budget.
    EXPECT_EQ(report.scannedFiles, 1);
    EXPECT_EQ(report.deletedFiles, 0);
}

TEST(CacheVerify, FlagsCorruptionAndKeyMismatchAndOptionallyDeletes)
{
    ScratchDir dir("verify");
    const std::string key(16, '1');
    {
        auto artifact = std::make_shared<CompileArtifact>();
        artifact->key = key;
        DiskPlanCache cache(dir.str());
        cache.store(key, artifact);
    }
    // Damage one copy's bytes and alias another under a foreign key.
    std::ofstream(dir.path() / "deadbeefdeadbeef.plan", std::ios::binary)
        << "cmswitch-plan-v1\nnot really";
    fs::copy_file(dir.path() / (key + ".plan"),
                  dir.path() / (std::string(16, '2') + ".plan"));

    CacheVerifyReport report = verifyPlanCache({.directory = dir.str()});
    EXPECT_EQ(report.scannedFiles, 3);
    EXPECT_EQ(report.validFiles, 1);
    EXPECT_EQ(report.damagedFiles, 2);
    EXPECT_EQ(report.removedFiles, 0);
    EXPECT_FALSE(report.clean());
    ASSERT_EQ(report.damaged.size(), 2u);
    for (const CacheVerifyDamage &damage : report.damaged)
        EXPECT_FALSE(damage.reason.empty());
    // Reporting alone must not delete anything.
    EXPECT_TRUE(fs::exists(dir.path() / "deadbeefdeadbeef.plan"));

    CacheVerifyReport removal =
        verifyPlanCache({.directory = dir.str(), .removeDamaged = true});
    EXPECT_EQ(removal.damagedFiles, 2);
    EXPECT_EQ(removal.removedFiles, 2);
    EXPECT_TRUE(removal.clean());
    EXPECT_FALSE(fs::exists(dir.path() / "deadbeefdeadbeef.plan"));
    EXPECT_FALSE(fs::exists(dir.path() / (std::string(16, '2') + ".plan")));
    EXPECT_TRUE(fs::exists(dir.path() / (key + ".plan")));
}

TEST(DiskCacheTouch, ReadOnlyDirectoryStillServesHits)
{
    // gc's LRU wants every hit to refresh the plan's mtime, but a
    // read-only cache directory (e.g. a shared CI artifact mount) must
    // stay a working cache: the hit serves, whatever happens to the
    // touch. The owner can still update timestamps of its own file, so
    // this pins the serve-anyway behaviour; the privilege-dropping test
    // below forces the touch to actually fail.
    ScratchDir dir("touch_readonly");
    const std::string key(16, '4');
    DiskPlanCache cache(dir.str());
    auto artifact = std::make_shared<CompileArtifact>();
    artifact->key = key;
    cache.store(key, artifact);

    fs::permissions(dir.path(), fs::perms::owner_read | fs::perms::owner_exec
                                    | fs::perms::group_read
                                    | fs::perms::group_exec
                                    | fs::perms::others_read
                                    | fs::perms::others_exec);
    ArtifactPtr hit = cache.load(key);
    fs::permissions(dir.path(), fs::perms::owner_all);

    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->key, key);
    DiskPlanCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.rejected, 0);
}

#ifdef __unix__
TEST(DiskCacheTouch, FailedMtimeRefreshCountsAndStillServes)
{
    // utimensat with explicit timestamps needs file ownership or write
    // access, so a genuine touch failure requires dropping privileges:
    // root stores a read-only plan, then loads it as an unprivileged
    // euid. Skipped when not root (CI test users cannot chown/seteuid);
    // the read-only-directory test above still runs there.
    if (geteuid() != 0)
        GTEST_SKIP() << "needs root to drop privileges for a failing touch";

    ScratchDir dir("touch_failed");
    const std::string key(16, '5');
    DiskPlanCache cache(dir.str());
    auto artifact = std::make_shared<CompileArtifact>();
    artifact->key = key;
    cache.store(key, artifact);

    const fs::perms read_only = fs::perms::owner_read | fs::perms::group_read
                              | fs::perms::others_read;
    fs::permissions(cache.planPath(key), read_only);
    fs::permissions(dir.path(), read_only | fs::perms::owner_exec
                                    | fs::perms::group_exec
                                    | fs::perms::others_exec);

    ASSERT_EQ(seteuid(65534), 0); // nobody: can read, cannot touch
    ArtifactPtr hit = cache.load(key);
    EXPECT_EQ(seteuid(0), 0);
    fs::permissions(dir.path(), fs::perms::owner_all);

    ASSERT_NE(hit, nullptr) << "a failed touch must not drop the hit";
    EXPECT_EQ(hit->key, key);
    DiskPlanCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.touchFailed, 1);
    EXPECT_EQ(stats.rejected, 0);

    // A touchable plan keeps the counter still.
    ArtifactPtr again = cache.load(key);
    ASSERT_NE(again, nullptr);
    EXPECT_EQ(cache.stats().touchFailed, 1);
}
#endif

TEST(StatsSidecar, AccumulatesAcrossCacheInstances)
{
    ScratchDir dir("sidecar_accumulate");
    const std::string key(16, '3');
    {
        // "Process" 1: one miss, one store; destructor flushes.
        DiskPlanCache first(dir.str());
        EXPECT_EQ(first.load(key), nullptr);
        auto artifact = std::make_shared<CompileArtifact>();
        artifact->key = key;
        first.store(key, artifact);
    }
    {
        // "Process" 2: one hit. An explicit flush returns the merged
        // lifetime totals; the destructor's second flush adds nothing.
        DiskPlanCache second(dir.str());
        EXPECT_NE(second.load(key), nullptr);
        DiskPlanCacheStats totals = second.flushSidecar();
        EXPECT_EQ(totals.hits, 1);
        EXPECT_EQ(totals.misses, 1);
        EXPECT_EQ(totals.stores, 1);
        EXPECT_EQ(totals.rejected, 0);
    }
    bool present = false;
    DiskPlanCacheStats totals = readStatsSidecar(dir.str(), &present);
    EXPECT_TRUE(present);
    EXPECT_EQ(totals.hits, 1);
    EXPECT_EQ(totals.misses, 1);
    EXPECT_EQ(totals.stores, 1);

    CacheStatsReport report = statsPlanCache(dir.str());
    EXPECT_TRUE(report.sidecarPresent);
    EXPECT_EQ(report.totals.hits, 1);
    EXPECT_EQ(report.planFiles, 1);
    EXPECT_GT(report.planBytes, 0);
    EXPECT_EQ(report.fingerprint, buildFingerprintHex());
}

TEST(StatsSidecar, DamagedSidecarReadsAsZeroAndIsRewritten)
{
    ScratchDir dir("sidecar_damaged");
    std::ofstream(statsSidecarPath(dir.str()), std::ios::binary)
        << "garbage, not an envelope";
    bool present = true;
    DiskPlanCacheStats totals = readStatsSidecar(dir.str(), &present);
    EXPECT_FALSE(present);
    EXPECT_EQ(totals.hits + totals.misses + totals.stores + totals.rejected,
              0);

    DiskPlanCacheStats delta;
    delta.hits = 5;
    mergeStatsSidecar(dir.str(), delta);
    totals = readStatsSidecar(dir.str(), &present);
    EXPECT_TRUE(present);
    EXPECT_EQ(totals.hits, 5);
}

TEST(StatsSidecar, V2RoundtripsTouchFailed)
{
    ScratchDir dir("sidecar_v2");
    DiskPlanCacheStats delta;
    delta.hits = 2;
    delta.touchFailed = 3;
    mergeStatsSidecar(dir.str(), delta);

    bool present = false;
    DiskPlanCacheStats totals = readStatsSidecar(dir.str(), &present);
    EXPECT_TRUE(present);
    EXPECT_EQ(totals.hits, 2);
    EXPECT_EQ(totals.touchFailed, 3);

    // Merges accumulate the fifth counter like the first four.
    DiskPlanCacheStats more;
    more.touchFailed = 4;
    totals = mergeStatsSidecar(dir.str(), more);
    EXPECT_EQ(totals.touchFailed, 7);

    // And `cache stats` surfaces it in the JSON report.
    CacheStatsReport report = statsPlanCache(dir.str());
    JsonWriter w;
    report.writeJson(w);
    EXPECT_NE(w.str().find("\"touch_failed\": 7"), std::string::npos)
        << w.str();
}

TEST(StatsSidecar, ReadsV1FormatAndUpgradesOnMerge)
{
    ScratchDir dir("sidecar_v1");
    // A sidecar as an older build wrote it: the v1 tag, four counters.
    BinaryWriter payload;
    payload.writeS64(10).writeS64(20).writeS64(30).writeS64(40);
    std::ofstream(statsSidecarPath(dir.str()), std::ios::binary)
        << wrapEnvelope(kStatsSidecarTagV1, payload.bytes());

    bool present = false;
    DiskPlanCacheStats totals = readStatsSidecar(dir.str(), &present);
    EXPECT_TRUE(present);
    EXPECT_EQ(totals.hits, 10);
    EXPECT_EQ(totals.misses, 20);
    EXPECT_EQ(totals.stores, 30);
    EXPECT_EQ(totals.rejected, 40);
    EXPECT_EQ(totals.touchFailed, 0); // v1 has no fifth counter

    // The first merge preserves the v1 totals and rewrites the file in
    // the v2 envelope.
    DiskPlanCacheStats delta;
    delta.hits = 1;
    delta.touchFailed = 2;
    totals = mergeStatsSidecar(dir.str(), delta);
    EXPECT_EQ(totals.hits, 11);
    EXPECT_EQ(totals.rejected, 40);
    EXPECT_EQ(totals.touchFailed, 2);

    std::string data;
    ASSERT_TRUE(readFileBytes(statsSidecarPath(dir.str()), &data));
    std::string_view upgraded;
    std::string error;
    EXPECT_TRUE(unwrapEnvelope(kStatsSidecarTag, data, &upgraded, &error))
        << error;
    totals = readStatsSidecar(dir.str(), &present);
    EXPECT_TRUE(present);
    EXPECT_EQ(totals.touchFailed, 2);
}

TEST(StatsSidecar, V3RoundtripsNeighborCounters)
{
    ScratchDir dir("sidecar_v3");
    DiskPlanCacheStats delta;
    delta.neighborHits = 3;
    delta.neighborPartials = 2;
    delta.neighborMisses = 1;
    mergeStatsSidecar(dir.str(), delta);

    bool present = false;
    DiskPlanCacheStats totals = readStatsSidecar(dir.str(), &present);
    EXPECT_TRUE(present);
    EXPECT_EQ(totals.neighborHits, 3);
    EXPECT_EQ(totals.neighborPartials, 2);
    EXPECT_EQ(totals.neighborMisses, 1);

    // DiskPlanCache::recordNeighbor feeds the same counters through the
    // flush path other totals use.
    {
        DiskPlanCache cache(dir.str());
        cache.recordNeighbor(NeighborOutcome::kHit);
        cache.recordNeighbor(NeighborOutcome::kMiss);
        EXPECT_EQ(cache.stats().neighborHits, 1);
        EXPECT_EQ(cache.stats().neighborMisses, 1);
    }
    totals = readStatsSidecar(dir.str(), &present);
    EXPECT_EQ(totals.neighborHits, 4);
    EXPECT_EQ(totals.neighborPartials, 2);
    EXPECT_EQ(totals.neighborMisses, 2);

    // And `cache stats` surfaces them in the JSON report.
    CacheStatsReport report = statsPlanCache(dir.str());
    JsonWriter w;
    report.writeJson(w);
    EXPECT_NE(w.str().find("\"neighbor_hits\": 4"), std::string::npos)
        << w.str();
    EXPECT_NE(w.str().find("\"neighbor_misses\": 2"), std::string::npos)
        << w.str();
}

TEST(StatsSidecar, ReadsV2FormatWithZeroNeighborCounters)
{
    ScratchDir dir("sidecar_v2_legacy");
    // A sidecar as the previous build wrote it: v2 tag, five counters.
    BinaryWriter payload;
    payload.writeS64(1).writeS64(2).writeS64(3).writeS64(4).writeS64(5);
    std::ofstream(statsSidecarPath(dir.str()), std::ios::binary)
        << wrapEnvelope(kStatsSidecarTagV2, payload.bytes());

    bool present = false;
    DiskPlanCacheStats totals = readStatsSidecar(dir.str(), &present);
    EXPECT_TRUE(present);
    EXPECT_EQ(totals.hits, 1);
    EXPECT_EQ(totals.touchFailed, 5);
    EXPECT_EQ(totals.neighborHits, 0); // v2 has no neighbor counters
    EXPECT_EQ(totals.neighborPartials, 0);
    EXPECT_EQ(totals.neighborMisses, 0);

    // The first merge upgrades the file to the v3 envelope in place.
    DiskPlanCacheStats delta;
    delta.neighborHits = 7;
    totals = mergeStatsSidecar(dir.str(), delta);
    EXPECT_EQ(totals.hits, 1);
    EXPECT_EQ(totals.neighborHits, 7);
    std::string data;
    ASSERT_TRUE(readFileBytes(statsSidecarPath(dir.str()), &data));
    std::string_view upgraded;
    std::string error;
    EXPECT_TRUE(unwrapEnvelope(kStatsSidecarTag, data, &upgraded, &error))
        << error;
}

TEST(PlanFingerprint, RevisionBumpChangesAndRevertRestoresTheDigest)
{
    const std::string original = buildFingerprintHex();
    bumpAlgorithmRevisionForTesting("segmenter", 1);
    const std::string bumped = buildFingerprintHex();
    EXPECT_NE(bumped, original);
    // A different pass's bump lands on a different digest again.
    bumpAlgorithmRevisionForTesting("allocator", 1);
    EXPECT_NE(buildFingerprintHex(), bumped);
    bumpAlgorithmRevisionForTesting("allocator", -1);
    bumpAlgorithmRevisionForTesting("segmenter", -1);
    EXPECT_EQ(buildFingerprintHex(), original);
}

TEST(PlanFingerprint, RevisionTableCoversTheCompilerPasses)
{
    // The table is the maintenance surface: losing a row silently
    // weakens invalidation, so pin the passes that must stay covered.
    const std::vector<AlgorithmRevision> &table = algorithmRevisions();
    auto has = [&table](const std::string &pass) {
        for (const AlgorithmRevision &entry : table)
            if (pass == entry.pass)
                return true;
        return false;
    };
    for (const char *pass :
         {"frontend-passes", "partitioner", "segmenter", "allocator",
          "codegen", "cost-model", "baselines", "energy-model"})
        EXPECT_TRUE(has(pass)) << pass;
    for (const AlgorithmRevision &entry : table)
        EXPECT_GE(entry.revision, 1) << entry.pass;
}

TEST(CacheReports, JsonDocumentsCarryTheirSchemas)
{
    ScratchDir dir("report_json");
    writeFakePlan(dir, "aaaa.plan", 10, minutes(1));

    JsonWriter gc_doc;
    gcPlanCache({.directory = dir.str(), .maxBytes = 1000}).writeJson(gc_doc);
    EXPECT_NE(gc_doc.str().find("cmswitch-cache-gc-v1"), std::string::npos);

    JsonWriter stats_doc;
    statsPlanCache(dir.str()).writeJson(stats_doc);
    EXPECT_NE(stats_doc.str().find("cmswitch-cache-stats-report-v2"),
              std::string::npos);

    JsonWriter verify_doc;
    verifyPlanCache({.directory = dir.str()}).writeJson(verify_doc);
    EXPECT_NE(verify_doc.str().find("cmswitch-cache-verify-v1"),
              std::string::npos);
}

} // namespace
} // namespace cmswitch
