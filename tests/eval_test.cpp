/** @file Tests for the end-to-end evaluation harness. */

#include <gtest/gtest.h>

#include "baselines/baseline.hpp"
#include "eval/evaluation.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

TEST(Eval, GraphEvaluationMatchesCompile)
{
    ChipConfig chip = ChipConfig::dynaplasia();
    auto compiler = makeCmSwitchCompiler(chip);
    Graph g = buildMobileNetV2(1);
    EndToEndResult r = evaluateGraph(*compiler, g);
    CompileResult c = compiler->compile(g);
    EXPECT_EQ(r.prefillCycles, c.totalCycles());
    EXPECT_EQ(r.decodeCycles, 0);
    EXPECT_EQ(r.segments, c.numSegments());
}

TEST(Eval, DecodeBucketsCoverAllTokens)
{
    // Total decode cycles must equal sum over buckets of
    // tokens x per-step latency; spot-check the token accounting by
    // comparing 1-bucket and 4-bucket runs (same model, same totals
    // within the bucketing approximation).
    ChipConfig chip = ChipConfig::dynaplasia();
    TransformerConfig cfg = TransformerConfig::opt6_7b();
    cfg.layers = 1;
    auto compiler = makeCmSwitchCompiler(chip);
    EndToEndResult one = evaluateGenerative(*compiler, cfg, 1, 32, 64, 1);
    EndToEndResult four = evaluateGenerative(*compiler, cfg, 1, 32, 64, 4);
    EXPECT_GT(one.decodeCycles, 0);
    EXPECT_GT(four.decodeCycles, 0);
    double ratio = static_cast<double>(one.decodeCycles)
                 / static_cast<double>(four.decodeCycles);
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.25);
}

TEST(Eval, LongerOutputCostsMore)
{
    ChipConfig chip = ChipConfig::dynaplasia();
    TransformerConfig cfg = TransformerConfig::opt6_7b();
    cfg.layers = 1;
    auto compiler = makeCmSwitchCompiler(chip);
    EndToEndResult short_gen = evaluateGenerative(*compiler, cfg, 1, 32, 32,
                                                  2);
    EndToEndResult long_gen = evaluateGenerative(*compiler, cfg, 1, 32, 128,
                                                 2);
    EXPECT_GT(long_gen.decodeCycles, 2 * short_gen.decodeCycles);
    EXPECT_EQ(long_gen.prefillCycles, short_gen.prefillCycles);
}

TEST(Eval, ModelLookupCoversZoo)
{
    EXPECT_EQ(buildModelByName("vgg16", 1).cimOps().size(), 16u);
    EXPECT_GT(buildModelByName("resnet50", 1).numOps(), 50);
    EXPECT_GT(buildModelByName("mobilenetv2", 2).numOps(), 50);
    Graph bert = buildModelByName("bert-base", 1, 16);
    EXPECT_GT(bert.numOps(), 10);
}

TEST(Eval, ConfigLookup)
{
    EXPECT_EQ(transformerConfigByName("opt-13b").layers, 40);
    EXPECT_EQ(transformerConfigByName("llama2-7b").gatedFfn, true);
    EXPECT_EQ(transformerConfigByName("bert-large").decoderOnly, false);
}

TEST(EvalDeath, UnknownModelRejected)
{
    EXPECT_EXIT(transformerConfigByName("gpt5"),
                ::testing::ExitedWithCode(1), "unknown transformer model");
}

TEST(EvalDeath, BadGenerativeArgs)
{
    ChipConfig chip = ChipConfig::dynaplasia();
    auto compiler = makeCmSwitchCompiler(chip);
    TransformerConfig cfg = TransformerConfig::opt6_7b();
    cfg.layers = 1;
    EXPECT_EXIT(evaluateGenerative(*compiler, cfg, 1, 0, 8),
                ::testing::ExitedWithCode(1), "input and output tokens");
}

} // namespace
} // namespace cmswitch
