/** @file Unit tests for workload analysis (MACs / traffic / AI). */

#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "models/model_zoo.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

TEST(Analysis, MatMulProfile)
{
    Graph g("mm");
    TensorId x = g.addTensor("x", Shape{4, 64}, DType::kInt8,
                             TensorKind::kInput);
    TensorId w = g.addTensor("w", Shape{64, 32}, DType::kInt8,
                             TensorKind::kWeight);
    TensorId y = g.addTensor("y", Shape{4, 32});
    Operator mm;
    mm.name = "mm";
    mm.kind = OpKind::kMatMul;
    mm.inputs = {x, w};
    mm.outputs = {y};
    OpId id = g.addOp(mm);

    OpProfile p = profileOp(g, id);
    EXPECT_EQ(p.macs, 4 * 64 * 32);
    EXPECT_EQ(p.weightBytes, 64 * 32);
    EXPECT_EQ(p.inputBytes, 4 * 64);
    EXPECT_EQ(p.outputBytes, 4 * 32);
    EXPECT_EQ(p.weightRows, 64);
    EXPECT_EQ(p.weightCols, 32);
    EXPECT_EQ(p.weightCopies, 1);
    double ai = static_cast<double>(p.macs)
              / static_cast<double>(p.trafficBytes());
    EXPECT_DOUBLE_EQ(p.aiMacsPerByte(), ai);
    EXPECT_DOUBLE_EQ(p.aiFlopsPerByte(), 2.0 * ai);
}

TEST(Analysis, DynMatMulCountsCopies)
{
    Graph g("attn");
    // 2 heads: Q [2, 4, 8] x K^T [2, 8, 4].
    TensorId q = g.addTensor("q", Shape{2, 4, 8});
    TensorId kt = g.addTensor("kt", Shape{2, 8, 4});
    TensorId s = g.addTensor("s", Shape{2, 4, 4});
    // Provide producers so profile sees activations; keep them inputs.
    g.tensor(q).kind = TensorKind::kInput;
    g.tensor(kt).kind = TensorKind::kInput;
    Operator mm;
    mm.name = "qkT";
    mm.kind = OpKind::kDynMatMul;
    mm.inputs = {q, kt};
    mm.outputs = {s};
    OpId id = g.addOp(mm);

    OpProfile p = profileOp(g, id);
    EXPECT_EQ(p.macs, 2 * 4 * 4 * 8);
    EXPECT_EQ(p.weightCopies, 2);
    EXPECT_EQ(p.weightRows, 8);
    EXPECT_EQ(p.weightCols, 4);
}

TEST(Analysis, ConvProfile)
{
    Graph g("conv");
    TensorId x = g.addTensor("x", Shape{1, 8, 16, 16}, DType::kInt8,
                             TensorKind::kInput);
    TensorId w = g.addTensor("w", Shape{16, 8, 3, 3}, DType::kInt8,
                             TensorKind::kWeight);
    TensorId y = g.addTensor("y", Shape{1, 16, 16, 16});
    Operator conv;
    conv.name = "conv";
    conv.kind = OpKind::kConv2d;
    conv.conv = ConvAttrs{3, 3, 1, 1, 1, 1, 1};
    conv.inputs = {x, w};
    conv.outputs = {y};
    OpId id = g.addOp(conv);

    OpProfile p = profileOp(g, id);
    EXPECT_EQ(p.macs, 16LL * 16 * 16 * 8 * 3 * 3);
    EXPECT_EQ(p.weightRows, 8 * 3 * 3);
    EXPECT_EQ(p.weightCols, 16);
    EXPECT_EQ(p.weightBytes, 16 * 8 * 3 * 3);
}

TEST(Analysis, FuOpHasNoMacs)
{
    Graph g = testing::chainMlp(1);
    TensorId y = g.op(0).outputs[0];
    TensorId z = g.addTensor("z", Shape{2, 32});
    Operator relu;
    relu.name = "relu";
    relu.kind = OpKind::kActivation;
    relu.activationName = "relu";
    relu.inputs = {y};
    relu.outputs = {z};
    OpId id = g.addOp(relu);

    OpProfile p = profileOp(g, id);
    EXPECT_EQ(p.macs, 0);
    EXPECT_EQ(p.vectorElems, 2 * 32);
}

TEST(Analysis, DecodeAiMuchLowerThanPrefill)
{
    TransformerConfig cfg = TransformerConfig::llama2_7b();
    cfg.layers = 2; // keep the test snappy
    Graph prefill = buildTransformerPrefill(cfg, 1, 256);
    Graph decode = buildTransformerDecodeStep(cfg, 1, 256);
    double ai_prefill = profileGraph(prefill).aiFlopsPerByte();
    double ai_decode = profileGraph(decode).aiFlopsPerByte();
    EXPECT_GT(ai_prefill, 10.0 * ai_decode);
    // The paper quotes AI ~= 2 FLOPs/byte for single-batch decode.
    EXPECT_LT(ai_decode, 4.0);
    EXPECT_GT(ai_decode, 0.5);
}

TEST(Analysis, ResNetAiInPaperRange)
{
    Graph resnet = buildResNet50(1);
    double ai = profileGraph(resnet).aiFlopsPerByte();
    // Fig. 5(c): ResNet-50 average AI around 66 FLOPs/MOP.
    EXPECT_GT(ai, 30.0);
    EXPECT_LT(ai, 150.0);
}

TEST(Analysis, ClassBreakdownCoversAttention)
{
    TransformerConfig cfg = TransformerConfig::bertBase();
    cfg.layers = 1;
    Graph g = buildTransformerPrefill(cfg, 1, 64);
    auto classes = profileByClass(g);
    bool saw_qkv = false, saw_ffn = false, saw_score = false;
    for (const ClassProfile &c : classes) {
        if (c.cls == OpClass::kMhaQkvProj)
            saw_qkv = c.macs > 0;
        if (c.cls == OpClass::kFfn)
            saw_ffn = c.macs > 0;
        if (c.cls == OpClass::kAttnScore)
            saw_score = c.macs > 0;
    }
    EXPECT_TRUE(saw_qkv);
    EXPECT_TRUE(saw_ffn);
    EXPECT_TRUE(saw_score);
}

TEST(Analysis, FfnAiGrowsWithSequenceLength)
{
    // Fig. 6(b): FC-class arithmetic intensity rises with seq length.
    TransformerConfig cfg = TransformerConfig::bertLarge();
    cfg.layers = 1;
    auto ffn_ai = [&](s64 seq) {
        Graph g = buildTransformerPrefill(cfg, 1, seq);
        for (const ClassProfile &c : profileByClass(g))
            if (c.cls == OpClass::kFfn)
                return c.aiFlopsPerByte();
        return 0.0;
    };
    EXPECT_LT(ffn_ai(128), ffn_ai(512));
    EXPECT_LT(ffn_ai(512), ffn_ai(2048));
}

} // namespace
} // namespace cmswitch
