/**
 * @file
 * Cross-cutting fuzz suite: random small graphs are compiled by every
 * compiler and each program must (1) pass structural validation,
 * (2) reproduce the reference executor bit-exactly through the tiled
 * functional simulator, and (3) re-price on the timing simulator to
 * exactly the compiler's own latency claim (pipelined compilers).
 */

#include <gtest/gtest.h>

#include "baselines/baseline.hpp"
#include "compiler/warm_state.hpp"
#include "metaop/printer.hpp"
#include "metaop/parser.hpp"
#include "metaop/validator.hpp"
#include "sim/functional.hpp"
#include "sim/timing.hpp"
#include "support/serialize.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

/** Random DAG: a chain of matmuls with occasional residual adds and
 *  FU interludes; dims kept small so functional execution is fast. */
Graph
randomGraph(Rng &rng)
{
    Graph g("fuzz");
    s64 dim = 8 * rng.nextInt(2, 6);
    s64 batch = rng.nextInt(1, 4);
    TensorId cursor = g.addTensor("x", Shape{batch, dim}, DType::kInt8,
                                  TensorKind::kInput);
    TensorId residual = kInvalidTensor;
    s64 ops = rng.nextInt(2, 6);
    for (s64 i = 0; i < ops; ++i) {
        s64 out_dim = 8 * rng.nextInt(2, 6);
        TensorId w = g.addTensor(concat("w", i),
                                 Shape{dim, out_dim}, DType::kInt8,
                                 TensorKind::kWeight);
        TensorId y = g.addTensor(concat("y", i),
                                 Shape{batch, out_dim});
        Operator mm;
        mm.name = "mm" + std::to_string(i);
        mm.kind = OpKind::kMatMul;
        mm.inputs = {cursor, w};
        mm.outputs = {y};
        g.addOp(mm);
        cursor = y;
        dim = out_dim;

        switch (rng.nextInt(0, 3)) {
          case 0: { // activation interlude
            TensorId a = g.addTensor("a" + std::to_string(i),
                                     Shape{batch, dim});
            Operator act;
            act.name = "act" + std::to_string(i);
            act.kind = OpKind::kActivation;
            act.activationName = rng.nextInt(0, 1) ? "relu" : "gelu";
            act.inputs = {cursor};
            act.outputs = {a};
            g.addOp(act);
            cursor = a;
            break;
          }
          case 1: { // remember a residual source
            residual = cursor;
            break;
          }
          case 2: { // close a residual if shapes line up
            if (residual != kInvalidTensor
                && g.tensor(residual).shape == g.tensor(cursor).shape) {
                TensorId s = g.addTensor("res" + std::to_string(i),
                                         Shape{batch, dim});
                Operator add;
                add.name = "add" + std::to_string(i);
                add.kind = OpKind::kElementwiseAdd;
                add.inputs = {cursor, residual};
                add.outputs = {s};
                g.addOp(add);
                cursor = s;
                residual = kInvalidTensor;
            }
            break;
          }
          default:
            break;
        }
    }
    g.tensor(cursor).kind = TensorKind::kOutput;
    g.validate();
    return g;
}

class CompilerFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(CompilerFuzz, EveryCompilerEveryInvariant)
{
    Rng rng(static_cast<u64>(GetParam()) * 2654435761u + 3);
    ChipConfig chip = testing::tinyChip(rng.nextInt(6, 14));
    Graph g = randomGraph(rng);
    Deha deha(chip);

    for (auto &compiler : makeAllCompilers(chip)) {
        CompileResult r = compiler->compile(g);

        // (1) structural validity.
        ValidationReport report = validateProgram(r.program, deha);
        EXPECT_TRUE(report.ok())
            << compiler->name() << ": " << report.summary();

        // (2) numerics: tiled execution == reference, bit for bit.
        EXPECT_EQ(verifyProgram(g, r.program, deha), 0) << compiler->name();

        // (3) timing: the simulator re-derives the compiler's claim.
        TimingReport t = TimingSimulator(deha).run(r.program);
        if (compiler->name() == "cmswitch"
            || compiler->name() == "cim-mlc") {
            EXPECT_EQ(t.total(), r.totalCycles()) << compiler->name();
        } else {
            EXPECT_LE(t.total(), r.totalCycles()) << compiler->name();
        }

        // (4) the textual program round-trips losslessly.
        MetaProgram back = parseProgram(printProgram(r.program));
        EXPECT_EQ(printProgram(back), printProgram(r.program))
            << compiler->name();

        // (5) dual-mode never loses to its own fixed-mode baseline.
        if (compiler->name() == "cmswitch") {
            auto mlc = makeCimMlcCompiler(chip);
            EXPECT_LE(r.totalCycles(), mlc->compile(g).totalCycles());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompilerFuzz, ::testing::Range(0, 15));

class SearchDiffFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(SearchDiffFuzz, FastAndReferencePlansIdenticalOnRandomGraphs)
{
    // Random-shape counterpart of tests/segmenter_diff_test.cpp: on
    // arbitrary DAGs (residuals, activation interludes, random dims)
    // the optimized search stack must still serialize byte-identically
    // to the retained pre-optimization path, for both the DP compiler
    // (cmswitch) and a greedy one sharing the allocator (cim-mlc).
    Rng rng(static_cast<u64>(GetParam()) * 0x9e3779b97f4a7c15ull + 11);
    ChipConfig chip = testing::tinyChip(rng.nextInt(6, 14));
    Graph g = randomGraph(rng);

    for (const char *name : {"cmswitch", "cim-mlc"}) {
        auto fast = makeCompilerByName(name, chip);
        auto reference = makeCompilerByName(name, chip,
                                            /*referenceSearch=*/true);
        CompileResult a = fast->compile(g);
        CompileResult b = reference->compile(g);
        a.compileSeconds = 0.0;
        b.compileSeconds = 0.0;
        BinaryWriter wa, wb;
        a.writeBinary(wa);
        b.writeBinary(wb);
        EXPECT_TRUE(wa.bytes() == wb.bytes())
            << name << ": fast and reference plans diverge on seed "
            << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchDiffFuzz, ::testing::Range(0, 12));

/**
 * Incremental (delta) compilation fuzz: compile a random DAG, retain
 * its warm state, apply ONE random structural mutation (shape bump, op
 * insert, op delete, residual-edge rewire), and demand that the warm
 * compile of the mutant — seeded with the pre-mutation neighbor state —
 * serializes byte-identically to a cold compile of the mutant.
 *
 * Graphs are built from an explicit recipe so a mutation is a small,
 * valid edit by construction (mutating a built Graph in place would
 * have to re-derive every downstream shape by hand).
 */
struct RecipeStep
{
    s64 outDim;    ///< matmul output width
    int interlude; ///< 0 relu, 1 gelu, 2 set-residual, 3 close-residual,
                   ///< 4 none
};

struct FuzzRecipe
{
    s64 batch = 1;
    s64 inDim = 16;
    std::vector<RecipeStep> steps;
};

FuzzRecipe
randomRecipe(Rng &rng)
{
    FuzzRecipe recipe;
    recipe.batch = rng.nextInt(1, 4);
    recipe.inDim = 8 * rng.nextInt(2, 6);
    s64 ops = rng.nextInt(3, 8);
    for (s64 i = 0; i < ops; ++i)
        recipe.steps.push_back({8 * rng.nextInt(2, 6),
                                static_cast<int>(rng.nextInt(0, 4))});
    return recipe;
}

Graph
buildRecipe(const FuzzRecipe &recipe)
{
    Graph g("fuzz-delta");
    s64 dim = recipe.inDim;
    TensorId cursor = g.addTensor("x", Shape{recipe.batch, dim},
                                  DType::kInt8, TensorKind::kInput);
    TensorId residual = kInvalidTensor;
    for (std::size_t i = 0; i < recipe.steps.size(); ++i) {
        const RecipeStep &step = recipe.steps[i];
        TensorId w = g.addTensor(concat("w", i),
                                 Shape{dim, step.outDim}, DType::kInt8,
                                 TensorKind::kWeight);
        TensorId y = g.addTensor(concat("y", i),
                                 Shape{recipe.batch, step.outDim});
        Operator mm;
        mm.name = "mm" + std::to_string(i);
        mm.kind = OpKind::kMatMul;
        mm.inputs = {cursor, w};
        mm.outputs = {y};
        g.addOp(mm);
        cursor = y;
        dim = step.outDim;

        switch (step.interlude) {
          case 0:
          case 1: {
            TensorId a = g.addTensor("a" + std::to_string(i),
                                     Shape{recipe.batch, dim});
            Operator act;
            act.name = "act" + std::to_string(i);
            act.kind = OpKind::kActivation;
            act.activationName = step.interlude == 0 ? "relu" : "gelu";
            act.inputs = {cursor};
            act.outputs = {a};
            g.addOp(act);
            cursor = a;
            break;
          }
          case 2:
            residual = cursor;
            break;
          case 3:
            if (residual != kInvalidTensor
                && g.tensor(residual).shape == g.tensor(cursor).shape) {
                TensorId s = g.addTensor("res" + std::to_string(i),
                                         Shape{recipe.batch, dim});
                Operator add;
                add.name = "add" + std::to_string(i);
                add.kind = OpKind::kElementwiseAdd;
                add.inputs = {cursor, residual};
                add.outputs = {s};
                g.addOp(add);
                cursor = s;
                residual = kInvalidTensor;
            }
            break;
          default:
            break;
        }
    }
    g.tensor(cursor).kind = TensorKind::kOutput;
    g.validate();
    return g;
}

/** Apply one random single-op mutation in place; returns its name. */
const char *
mutateRecipe(FuzzRecipe &recipe, Rng &rng)
{
    s64 n = static_cast<s64>(recipe.steps.size());
    switch (rng.nextInt(0, 3)) {
      case 0: // shape bump: widen one matmul
        recipe.steps[rng.nextInt(0, static_cast<int>(n) - 1)].outDim += 8;
        return "shape-bump";
      case 1: { // op insert: splice a fresh matmul step anywhere
        RecipeStep step{8 * rng.nextInt(2, 6),
                        static_cast<int>(rng.nextInt(0, 1))};
        recipe.steps.insert(
            recipe.steps.begin() + rng.nextInt(0, static_cast<int>(n)),
            step);
        return "op-insert";
      }
      case 2: // op delete (keep at least two steps)
        if (n > 2) {
            recipe.steps.erase(recipe.steps.begin()
                               + rng.nextInt(0, static_cast<int>(n) - 1));
            return "op-delete";
        }
        recipe.steps[0].outDim += 8;
        return "shape-bump";
      default: { // edge rewire: retarget/toggle a residual marker
        int &interlude =
            recipe.steps[rng.nextInt(0, static_cast<int>(n) - 1)].interlude;
        interlude = interlude == 2 ? 3 : 2;
        return "edge-rewire";
      }
    }
}

class IncrementalDiffFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(IncrementalDiffFuzz, DeltaCompileMatchesColdOnMutatedGraphs)
{
    Rng rng(static_cast<u64>(GetParam()) * 0x9e3779b97f4a7c15ull + 29);
    ChipConfig chip = testing::tinyChip(rng.nextInt(6, 14));
    FuzzRecipe recipe = randomRecipe(rng);
    Graph original = buildRecipe(recipe);

    auto compiler = makeCmSwitchCompiler(chip);
    std::shared_ptr<CompilerWarmState> retained;
    compiler->compileWarm(original, nullptr, &retained, nullptr);
    ASSERT_NE(retained, nullptr);

    FuzzRecipe mutant = recipe;
    const char *kind = mutateRecipe(mutant, rng);
    Graph mutated = buildRecipe(mutant);

    CompileResult cold = compiler->compile(mutated);
    std::shared_ptr<CompilerWarmState> mutant_state;
    WarmReuseStats stats;
    CompileResult warm = compiler->compileWarm(mutated, retained,
                                               &mutant_state, &stats);

    cold.compileSeconds = 0.0;
    warm.compileSeconds = 0.0;
    BinaryWriter wc, ww;
    cold.writeBinary(wc);
    warm.writeBinary(ww);
    EXPECT_TRUE(wc.bytes() == ww.bytes())
        << kind << " mutation: delta compile diverged from cold on seed "
        << GetParam();

    // The differ must never reuse DP rows across the changed boundary:
    // imports are bounded by the fully-equal meta prefix.
    ASSERT_NE(mutant_state, nullptr);
    EXPECT_LE(stats.dpRowsReused,
              warmDpSafePrefix(mutant_state->ops, retained->ops))
        << kind;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalDiffFuzz,
                         ::testing::Range(0, 12));

} // namespace
} // namespace cmswitch
