/**
 * @file
 * Cross-cutting fuzz suite: random small graphs are compiled by every
 * compiler and each program must (1) pass structural validation,
 * (2) reproduce the reference executor bit-exactly through the tiled
 * functional simulator, and (3) re-price on the timing simulator to
 * exactly the compiler's own latency claim (pipelined compilers).
 */

#include <gtest/gtest.h>

#include "baselines/baseline.hpp"
#include "metaop/printer.hpp"
#include "metaop/parser.hpp"
#include "metaop/validator.hpp"
#include "sim/functional.hpp"
#include "sim/timing.hpp"
#include "support/serialize.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

/** Random DAG: a chain of matmuls with occasional residual adds and
 *  FU interludes; dims kept small so functional execution is fast. */
Graph
randomGraph(Rng &rng)
{
    Graph g("fuzz");
    s64 dim = 8 * rng.nextInt(2, 6);
    s64 batch = rng.nextInt(1, 4);
    TensorId cursor = g.addTensor("x", Shape{batch, dim}, DType::kInt8,
                                  TensorKind::kInput);
    TensorId residual = kInvalidTensor;
    s64 ops = rng.nextInt(2, 6);
    for (s64 i = 0; i < ops; ++i) {
        s64 out_dim = 8 * rng.nextInt(2, 6);
        TensorId w = g.addTensor(concat("w", i),
                                 Shape{dim, out_dim}, DType::kInt8,
                                 TensorKind::kWeight);
        TensorId y = g.addTensor(concat("y", i),
                                 Shape{batch, out_dim});
        Operator mm;
        mm.name = "mm" + std::to_string(i);
        mm.kind = OpKind::kMatMul;
        mm.inputs = {cursor, w};
        mm.outputs = {y};
        g.addOp(mm);
        cursor = y;
        dim = out_dim;

        switch (rng.nextInt(0, 3)) {
          case 0: { // activation interlude
            TensorId a = g.addTensor("a" + std::to_string(i),
                                     Shape{batch, dim});
            Operator act;
            act.name = "act" + std::to_string(i);
            act.kind = OpKind::kActivation;
            act.activationName = rng.nextInt(0, 1) ? "relu" : "gelu";
            act.inputs = {cursor};
            act.outputs = {a};
            g.addOp(act);
            cursor = a;
            break;
          }
          case 1: { // remember a residual source
            residual = cursor;
            break;
          }
          case 2: { // close a residual if shapes line up
            if (residual != kInvalidTensor
                && g.tensor(residual).shape == g.tensor(cursor).shape) {
                TensorId s = g.addTensor("res" + std::to_string(i),
                                         Shape{batch, dim});
                Operator add;
                add.name = "add" + std::to_string(i);
                add.kind = OpKind::kElementwiseAdd;
                add.inputs = {cursor, residual};
                add.outputs = {s};
                g.addOp(add);
                cursor = s;
                residual = kInvalidTensor;
            }
            break;
          }
          default:
            break;
        }
    }
    g.tensor(cursor).kind = TensorKind::kOutput;
    g.validate();
    return g;
}

class CompilerFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(CompilerFuzz, EveryCompilerEveryInvariant)
{
    Rng rng(static_cast<u64>(GetParam()) * 2654435761u + 3);
    ChipConfig chip = testing::tinyChip(rng.nextInt(6, 14));
    Graph g = randomGraph(rng);
    Deha deha(chip);

    for (auto &compiler : makeAllCompilers(chip)) {
        CompileResult r = compiler->compile(g);

        // (1) structural validity.
        ValidationReport report = validateProgram(r.program, deha);
        EXPECT_TRUE(report.ok())
            << compiler->name() << ": " << report.summary();

        // (2) numerics: tiled execution == reference, bit for bit.
        EXPECT_EQ(verifyProgram(g, r.program, deha), 0) << compiler->name();

        // (3) timing: the simulator re-derives the compiler's claim.
        TimingReport t = TimingSimulator(deha).run(r.program);
        if (compiler->name() == "cmswitch"
            || compiler->name() == "cim-mlc") {
            EXPECT_EQ(t.total(), r.totalCycles()) << compiler->name();
        } else {
            EXPECT_LE(t.total(), r.totalCycles()) << compiler->name();
        }

        // (4) the textual program round-trips losslessly.
        MetaProgram back = parseProgram(printProgram(r.program));
        EXPECT_EQ(printProgram(back), printProgram(r.program))
            << compiler->name();

        // (5) dual-mode never loses to its own fixed-mode baseline.
        if (compiler->name() == "cmswitch") {
            auto mlc = makeCimMlcCompiler(chip);
            EXPECT_LE(r.totalCycles(), mlc->compile(g).totalCycles());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompilerFuzz, ::testing::Range(0, 15));

class SearchDiffFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(SearchDiffFuzz, FastAndReferencePlansIdenticalOnRandomGraphs)
{
    // Random-shape counterpart of tests/segmenter_diff_test.cpp: on
    // arbitrary DAGs (residuals, activation interludes, random dims)
    // the optimized search stack must still serialize byte-identically
    // to the retained pre-optimization path, for both the DP compiler
    // (cmswitch) and a greedy one sharing the allocator (cim-mlc).
    Rng rng(static_cast<u64>(GetParam()) * 0x9e3779b97f4a7c15ull + 11);
    ChipConfig chip = testing::tinyChip(rng.nextInt(6, 14));
    Graph g = randomGraph(rng);

    for (const char *name : {"cmswitch", "cim-mlc"}) {
        auto fast = makeCompilerByName(name, chip);
        auto reference = makeCompilerByName(name, chip,
                                            /*referenceSearch=*/true);
        CompileResult a = fast->compile(g);
        CompileResult b = reference->compile(g);
        a.compileSeconds = 0.0;
        b.compileSeconds = 0.0;
        BinaryWriter wa, wb;
        a.writeBinary(wa);
        b.writeBinary(wb);
        EXPECT_TRUE(wa.bytes() == wb.bytes())
            << name << ": fast and reference plans diverge on seed "
            << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchDiffFuzz, ::testing::Range(0, 12));

} // namespace
} // namespace cmswitch
