/** @file Tests for graph flattening and sub-operator partitioning. */

#include <gtest/gtest.h>

#include "compiler/partitioner.hpp"
#include "models/model_zoo.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

TEST(Partitioner, ChainProducesOrderedOpsWithEdges)
{
    Deha deha(testing::tinyChip(8));
    Graph g = testing::chainMlp(3);
    auto ops = flattenGraph(g, deha);
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_TRUE(ops[0].preds.empty());
    ASSERT_EQ(ops[1].preds.size(), 1u);
    EXPECT_EQ(ops[1].preds[0], 0);
    ASSERT_EQ(ops[2].preds.size(), 1u);
    EXPECT_EQ(ops[2].preds[0], 1);
    // Edge reuse bound equals the connecting tensor bytes.
    EXPECT_EQ(ops[1].reuseBytes[0], 2 * 32);
}

TEST(Partitioner, FuEpilogueFoldsUpstream)
{
    Deha deha(testing::tinyChip(8));
    Graph g = buildTinyMlp(2, 16, 32, 8); // fc1 -> relu -> fc2
    auto ops = flattenGraph(g, deha);
    ASSERT_EQ(ops.size(), 2u);
    // relu's elements (2x32) fold onto fc1.
    EXPECT_EQ(ops[0].work.vectorElems, 2 * 32);
    EXPECT_EQ(ops[1].work.vectorElems, 0);
}

TEST(Partitioner, NetworkOutputsMarkedLive)
{
    Deha deha(testing::tinyChip(8));
    Graph g = buildTinyMlp(2, 16, 32, 8);
    auto ops = flattenGraph(g, deha);
    EXPECT_EQ(ops[0].liveOutBytes, 0);
    EXPECT_EQ(ops[1].liveOutBytes, 2 * 8); // y is a network output
}

TEST(Partitioner, OversizedOpIsSplit)
{
    Deha deha(testing::tinyChip(8)); // 16x16 arrays, budget < 8
    Graph g("big");
    TensorId x = g.addTensor("x", Shape{1, 64}, DType::kInt8,
                             TensorKind::kInput);
    // 64x160 weights => 4 x 10 = 40 tiles >> chip.
    TensorId w = g.addTensor("w", Shape{64, 160}, DType::kInt8,
                             TensorKind::kWeight);
    TensorId y = g.addTensor("y", Shape{1, 160}, DType::kInt8,
                             TensorKind::kOutput);
    Operator mm;
    mm.name = "mm";
    mm.kind = OpKind::kMatMul;
    mm.inputs = {x, w};
    mm.outputs = {y};
    g.addOp(mm);

    auto ops = flattenGraph(g, deha);
    ASSERT_GT(ops.size(), 1u);
    s64 tiles = 0, macs = 0, out_bytes = 0;
    for (const ScheduledOp &s : ops) {
        EXPECT_LE(s.work.weightTiles, deha.config().numSwitchArrays);
        EXPECT_EQ(s.subCount, static_cast<s64>(ops.size()));
        tiles += s.work.weightTiles;
        macs += s.work.macs;
        out_bytes += s.work.outputBytes;
        // Every slice streams the full moving input.
        EXPECT_EQ(s.work.inputBytes, 64);
    }
    EXPECT_EQ(tiles, 40);
    EXPECT_EQ(macs, 64 * 160);
    EXPECT_EQ(out_bytes, 160);
}

TEST(Partitioner, ExplicitBudgetHonored)
{
    Deha deha(testing::tinyChip(8));
    Graph g = testing::chainMlp(1, /*dim=*/64); // 4x4 = 16 tiles
    PartitionOptions opts;
    opts.maxTilesPerSubOp = 4;
    auto ops = flattenGraph(g, deha, opts);
    EXPECT_EQ(ops.size(), 4u);
    for (const ScheduledOp &s : ops)
        EXPECT_LE(s.work.weightTiles, 4);
}

TEST(Partitioner, ConsumerConnectsToAllSlices)
{
    Deha deha(testing::tinyChip(8));
    Graph g = testing::chainMlp(2, /*dim=*/64);
    PartitionOptions opts;
    opts.maxTilesPerSubOp = 8;
    auto ops = flattenGraph(g, deha, opts);
    ASSERT_EQ(ops.size(), 4u); // each fc split in two
    // Slices of fc1 (indices 2,3) depend on both slices of fc0.
    ASSERT_EQ(ops[2].preds.size(), 2u);
    EXPECT_EQ(ops[2].preds[0], 0);
    EXPECT_EQ(ops[2].preds[1], 1);
}

TEST(Partitioner, TransformerDecodeFlattens)
{
    Deha deha(ChipConfig::dynaplasia());
    TransformerConfig cfg = TransformerConfig::opt6_7b();
    cfg.layers = 1;
    Graph g = buildTransformerDecodeStep(cfg, 1, 64);
    auto ops = flattenGraph(g, deha);
    EXPECT_GT(ops.size(), 6u);
    for (const ScheduledOp &s : ops) {
        EXPECT_GT(s.work.weightTiles, 0);
        EXPECT_LE(s.work.weightTiles, deha.config().numSwitchArrays);
        EXPECT_GT(s.work.macs, 0);
    }
    // Attention score/context ops carry dynamic weights.
    bool saw_dynamic = false;
    for (const ScheduledOp &s : ops)
        saw_dynamic |= s.work.dynamicWeights;
    EXPECT_TRUE(saw_dynamic);
}

TEST(Partitioner, SoftmaxFoldsOntoScoreOp)
{
    Deha deha(ChipConfig::dynaplasia());
    TransformerConfig cfg = TransformerConfig::bertBase();
    cfg.layers = 1;
    Graph g = buildTransformerPrefill(cfg, 1, 32);
    auto ops = flattenGraph(g, deha);
    // Find the attention-score op; its epilogue must include softmax.
    bool found = false;
    for (const ScheduledOp &s : ops) {
        if (s.work.cls == OpClass::kAttnScore) {
            EXPECT_GT(s.work.vectorElems, 0) << "softmax not folded";
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Partitioner, TilingGuardAllowsReasonableSplits)
{
    Deha deha(testing::tinyChip(8));
    Graph g = testing::chainMlp(3, 64);
    PartitionOptions options;
    options.maxSubOpsPerOp = 64;
    auto ops = flattenGraph(g, deha, options);
    EXPECT_GE(ops.size(), 3u);
}

TEST(PartitionerDeath, TilingGuardTripsOnMidgetArrays)
{
    // The ROADMAP blowup: 16x16 arrays under an opt-6.7b decode matmul
    // tile combinatorially. The guard must fail fast, naming the op
    // and the geometry, instead of minutes of downstream search.
    Deha deha(testing::tinyChip(16, 16));
    TransformerConfig cfg = TransformerConfig::opt6_7b();
    cfg.layers = 1;
    Graph g = buildTransformerDecodeStep(cfg, 1, 128);
    EXPECT_EXIT(flattenGraph(g, deha), ::testing::ExitedWithCode(1),
                "exceeds the tiling guard");
}

TEST(PartitionerDeath, TilingGuardCeilingConfigurable)
{
    Deha deha(testing::tinyChip(8));
    Graph g = testing::chainMlp(1, 64);
    PartitionOptions options;
    options.maxSubOpsPerOp = 1; // 64x64 weights need >1 sub-op on 16x16
    EXPECT_EXIT(flattenGraph(g, deha, options),
                ::testing::ExitedWithCode(1), "exceeds the tiling guard");
}

TEST(Partitioner, TilingGuardZeroDisables)
{
    Deha deha(testing::tinyChip(8));
    Graph g = testing::chainMlp(1, 64);
    PartitionOptions options;
    options.maxSubOpsPerOp = 0;
    auto ops = flattenGraph(g, deha, options);
    EXPECT_GE(ops.size(), 1u);
}

} // namespace
} // namespace cmswitch
