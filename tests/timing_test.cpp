/** @file Timing simulator vs. compiler cost-model cross-checks. */

#include <gtest/gtest.h>

#include "baselines/baseline.hpp"
#include "compiler/cmswitch_compiler.hpp"
#include "models/model_zoo.hpp"
#include "sim/timing.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

void
expectBreakdownMatches(const ChipConfig &chip, Compiler &compiler,
                       const Graph &g)
{
    CompileResult r = compiler.compile(g);
    Deha deha(chip);
    TimingSimulator sim(deha);
    TimingReport t = sim.run(r.program);

    EXPECT_EQ(t.breakdown.intra, r.latency.intra) << compiler.name();
    EXPECT_EQ(t.breakdown.modeSwitch, r.latency.modeSwitch)
        << compiler.name();
    EXPECT_EQ(t.breakdown.rewrite, r.latency.rewrite) << compiler.name();
    EXPECT_EQ(t.breakdown.writeback, r.latency.writeback) << compiler.name();
    EXPECT_EQ(t.total(), r.totalCycles()) << compiler.name();
    EXPECT_EQ(static_cast<s64>(t.segmentCycles.size()), r.numSegments());
}

TEST(Timing, MatchesCompilerOnChain)
{
    ChipConfig chip = testing::tinyChip(8);
    CmSwitchCompiler compiler(chip);
    expectBreakdownMatches(chip, compiler, testing::chainMlp(5));
}

TEST(Timing, MatchesCompilerOnCnn)
{
    ChipConfig chip = ChipConfig::dynaplasia();
    CmSwitchCompiler compiler(chip);
    expectBreakdownMatches(chip, compiler, buildMobileNetV2(1));
}

TEST(Timing, MatchesCompilerOnTransformerPrefill)
{
    ChipConfig chip = ChipConfig::dynaplasia();
    CmSwitchCompiler compiler(chip);
    TransformerConfig cfg = TransformerConfig::bertBase();
    cfg.layers = 2;
    expectBreakdownMatches(chip, compiler, buildTransformerPrefill(cfg, 1, 64));
}

TEST(Timing, MatchesCompilerOnDecodeStep)
{
    ChipConfig chip = ChipConfig::dynaplasia();
    CmSwitchCompiler compiler(chip);
    TransformerConfig cfg = TransformerConfig::opt6_7b();
    cfg.layers = 2;
    expectBreakdownMatches(chip, compiler,
                           buildTransformerDecodeStep(cfg, 1, 128));
}

/** Pipelined-baseline programs must also re-price identically. */
class TimingAcrossCompilers : public ::testing::TestWithParam<int>
{
};

TEST_P(TimingAcrossCompilers, BreakdownConsistent)
{
    ChipConfig chip = ChipConfig::dynaplasia();
    auto compilers = makeAllCompilers(chip);
    Compiler &compiler = *compilers[static_cast<std::size_t>(GetParam())];
    // Serial compilers (PUMA/OCC) price intra as a sum; the timing
    // simulator models the parallel block as a max. Skip those two for
    // the strict equality (they are covered by the >= check below).
    Graph g = buildResNet18(1);
    CompileResult r = compiler.compile(g);
    Deha deha(chip);
    TimingSimulator sim(deha);
    TimingReport t = sim.run(r.program);
    if (compiler.name() == "cim-mlc" || compiler.name() == "cmswitch") {
        EXPECT_EQ(t.total(), r.totalCycles());
    } else {
        // Serial scheduling is pessimistic vs. the parallel block.
        EXPECT_LE(t.total(), r.totalCycles());
    }
    EXPECT_GE(t.switchedArrays, 0);
}

INSTANTIATE_TEST_SUITE_P(AllCompilers, TimingAcrossCompilers,
                         ::testing::Range(0, 4));

TEST(Timing, SwitchShareSmall)
{
    // Sec. 5.5: mode switching is a negligible share of execution.
    ChipConfig chip = ChipConfig::dynaplasia();
    CmSwitchCompiler compiler(chip);
    TransformerConfig cfg = TransformerConfig::opt6_7b();
    cfg.layers = 2;
    CompileResult r = compiler.compile(buildTransformerDecodeStep(cfg, 1, 256));
    Deha deha(chip);
    TimingReport t = TimingSimulator(deha).run(r.program);
    EXPECT_LT(t.switchShare(), 0.10);
}

} // namespace
} // namespace cmswitch
