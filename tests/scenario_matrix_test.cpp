/**
 * @file
 * Scenario matrix: sweep {dynaplasia, prime, tiny} chips x {resnet18,
 * mobilenetv2, bert-base prefill, opt-6.7b decode} workloads x
 * {cmswitch, cim-mlc, occ, puma} compilers and pin the cross-cutting
 * invariants the paper's figures rely on:
 *
 *  - every cell produces a validator-clean meta-operator program;
 *  - latency is positive and its breakdown sums to the total, energy is
 *    positive with a non-negative breakdown;
 *  - CMSwitch is never slower than any baseline on the same cell
 *    (Fig. 14 dominance);
 *  - decode workloads run a higher memory-mode array ratio than CNNs on
 *    every chip (Fig. 1/16 motivation).
 *
 * Each claim lives here as a test rather than only as a bench figure,
 * so perf/refactor PRs land against a green cross-product gate.
 *
 * All compiles route through testing::scenarioCompile's shared plan
 * cache: the dominance and mode-pressure sweeps reuse the cell sweep's
 * plans instead of recompiling each (chip, workload, compiler) pair.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <tuple>

#include "scenario_util.hpp"

namespace cmswitch {
namespace {

using ::cmswitch::testing::scenarioChipNames;
using ::cmswitch::testing::scenarioCompile;
using ::cmswitch::testing::scenarioCompilerNames;
using ::cmswitch::testing::scenarioWorkloadNames;

/** gtest-safe name: parameter tuples joined with non-alnum squashed. */
template <typename Tuple>
std::string
cellName(const ::testing::TestParamInfo<Tuple> &info)
{
    std::string joined = std::apply(
        [](const auto &...part) {
            std::string out;
            ((out += out.empty() ? part : "__" + part), ...);
            return out;
        },
        info.param);
    for (char &c : joined)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return joined;
}

auto
allChips()
{
    return ::testing::ValuesIn(scenarioChipNames());
}

auto
allWorkloads()
{
    return ::testing::ValuesIn(scenarioWorkloadNames());
}

auto
allCompilers()
{
    return ::testing::ValuesIn(scenarioCompilerNames());
}

/** One (chip, workload, compiler) cell of the matrix. */
class ScenarioCell
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string, std::string>>
{
};

TEST_P(ScenarioCell, ProgramValidAndBreakdownsConsistent)
{
    auto [chip_name, workload_name, compiler_name] = GetParam();
    ArtifactPtr artifact =
        scenarioCompile(chip_name, workload_name, compiler_name);
    const CompileResult &r = artifact->result;

    EXPECT_TRUE(artifact->validation.ok()) << artifact->validation.summary();

    // Latency: positive total, non-negative components, exact sum.
    EXPECT_GT(r.totalCycles(), 0);
    EXPECT_GE(r.latency.intra, 0);
    EXPECT_GE(r.latency.writeback, 0);
    EXPECT_GE(r.latency.modeSwitch, 0);
    EXPECT_GE(r.latency.rewrite, 0);
    EXPECT_EQ(r.totalCycles(), r.latency.intra + r.latency.writeback
                                   + r.latency.modeSwitch
                                   + r.latency.rewrite);

    // Program shape: at least one segment, ratio is a valid fraction.
    EXPECT_GE(r.numSegments(), 1);
    EXPECT_GE(r.avgMemoryArrayRatio(), 0.0);
    EXPECT_LE(r.avgMemoryArrayRatio(), 1.0);
    EXPECT_GE(r.compileSeconds, 0.0);

    // Energy: positive total, non-negative breakdown, components that
    // must be exercised by any matmul workload actually are.
    const EnergyReport &joules = artifact->energy;
    EXPECT_GE(joules.computePj, 0.0);
    EXPECT_GE(joules.memoryPj, 0.0);
    EXPECT_GE(joules.rewritePj, 0.0);
    EXPECT_GE(joules.dmaPj, 0.0);
    EXPECT_GE(joules.switchPj, 0.0);
    EXPECT_GE(joules.fuPj, 0.0);
    EXPECT_GE(joules.staticPj, 0.0);
    EXPECT_GT(joules.computePj, 0.0) << "matmuls must cost MAC energy";
    EXPECT_GT(joules.staticPj, 0.0) << "nonzero runtime must leak";
    EXPECT_GT(joules.totalPj(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Matrix, ScenarioCell,
                         ::testing::Combine(allChips(), allWorkloads(),
                                            allCompilers()),
                         cellName<ScenarioCell::ParamType>);

/** CMSwitch vs every baseline on one (chip, workload) pair. */
class ScenarioDominance
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>>
{
};

TEST_P(ScenarioDominance, CmSwitchNeverSlowerThanAnyBaseline)
{
    auto [chip_name, workload_name] = GetParam();
    Cycles ours = scenarioCompile(chip_name, workload_name, "cmswitch")
                      ->result.totalCycles();
    for (const std::string &baseline : scenarioCompilerNames()) {
        if (baseline == "cmswitch")
            continue;
        Cycles theirs = scenarioCompile(chip_name, workload_name, baseline)
                            ->result.totalCycles();
        EXPECT_LE(ours, theirs)
            << "cmswitch slower than " << baseline << " on " << chip_name
            << " / " << workload_name;
    }
}

INSTANTIATE_TEST_SUITE_P(Matrix, ScenarioDominance,
                         ::testing::Combine(allChips(), allWorkloads()),
                         cellName<ScenarioDominance::ParamType>);

/** Decode steps want memory mode more than CNNs do, on every chip. */
class ScenarioModePressure : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ScenarioModePressure, DecodeRunsMoreMemoryModeThanCnn)
{
    double decode_ratio =
        scenarioCompile(GetParam(), "opt-6.7b-decode", "cmswitch")
            ->result.avgMemoryArrayRatio();
    double cnn_ratio = scenarioCompile(GetParam(), "resnet18", "cmswitch")
                           ->result.avgMemoryArrayRatio();
    EXPECT_GT(decode_ratio, cnn_ratio);
}

INSTANTIATE_TEST_SUITE_P(Matrix, ScenarioModePressure, allChips(),
                         [](const ::testing::TestParamInfo<std::string> &i) {
                             return i.param;
                         });

} // namespace
} // namespace cmswitch
