/**
 * @file
 * Scenario matrix: sweep {dynaplasia, prime, tiny} chips x {resnet18,
 * mobilenetv2, bert-base prefill, opt-6.7b decode} workloads x
 * {cmswitch, cim-mlc, occ, puma} compilers and pin the cross-cutting
 * invariants the paper's figures rely on:
 *
 *  - every cell produces a validator-clean meta-operator program;
 *  - latency is positive and its breakdown sums to the total, energy is
 *    positive with a non-negative breakdown;
 *  - CMSwitch is never slower than any baseline on the same cell
 *    (Fig. 14 dominance);
 *  - decode workloads run a higher memory-mode array ratio than CNNs on
 *    every chip (Fig. 1/16 motivation).
 *
 * Each claim lives here as a test rather than only as a bench figure,
 * so perf/refactor PRs land against a green cross-product gate.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <tuple>

#include "metaop/validator.hpp"
#include "scenario_util.hpp"
#include "sim/energy.hpp"

namespace cmswitch {
namespace {

using ::cmswitch::testing::scenarioChip;
using ::cmswitch::testing::scenarioChipNames;
using ::cmswitch::testing::scenarioCompiler;
using ::cmswitch::testing::scenarioCompilerNames;
using ::cmswitch::testing::scenarioWorkload;
using ::cmswitch::testing::scenarioWorkloadNames;

/** gtest-safe name: parameter tuples joined with non-alnum squashed. */
template <typename Tuple>
std::string
cellName(const ::testing::TestParamInfo<Tuple> &info)
{
    std::string joined = std::apply(
        [](const auto &...part) {
            std::string out;
            ((out += out.empty() ? part : "__" + part), ...);
            return out;
        },
        info.param);
    for (char &c : joined)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return joined;
}

auto
allChips()
{
    return ::testing::ValuesIn(scenarioChipNames());
}

auto
allWorkloads()
{
    return ::testing::ValuesIn(scenarioWorkloadNames());
}

auto
allCompilers()
{
    return ::testing::ValuesIn(scenarioCompilerNames());
}

/** One (chip, workload, compiler) cell of the matrix. */
class ScenarioCell
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string, std::string>>
{
};

TEST_P(ScenarioCell, ProgramValidAndBreakdownsConsistent)
{
    auto [chip_name, workload_name, compiler_name] = GetParam();
    ChipConfig chip = scenarioChip(chip_name);
    Graph graph = scenarioWorkload(workload_name);
    auto compiler = scenarioCompiler(compiler_name, chip);

    CompileResult r = compiler->compile(graph);

    Deha deha(chip);
    ValidationReport report = validateProgram(r.program, deha);
    EXPECT_TRUE(report.ok()) << report.summary();

    // Latency: positive total, non-negative components, exact sum.
    EXPECT_GT(r.totalCycles(), 0);
    EXPECT_GE(r.latency.intra, 0);
    EXPECT_GE(r.latency.writeback, 0);
    EXPECT_GE(r.latency.modeSwitch, 0);
    EXPECT_GE(r.latency.rewrite, 0);
    EXPECT_EQ(r.totalCycles(), r.latency.intra + r.latency.writeback
                                   + r.latency.modeSwitch
                                   + r.latency.rewrite);

    // Program shape: at least one segment, ratio is a valid fraction.
    EXPECT_GE(r.numSegments(), 1);
    EXPECT_GE(r.avgMemoryArrayRatio(), 0.0);
    EXPECT_LE(r.avgMemoryArrayRatio(), 1.0);
    EXPECT_GE(r.compileSeconds, 0.0);

    // Energy: positive total, non-negative breakdown, components that
    // must be exercised by any matmul workload actually are.
    EnergyModel energy(deha, EnergyParams::forChip(chip));
    EnergyReport joules = energy.price(r.program, r.totalCycles());
    EXPECT_GE(joules.computePj, 0.0);
    EXPECT_GE(joules.memoryPj, 0.0);
    EXPECT_GE(joules.rewritePj, 0.0);
    EXPECT_GE(joules.dmaPj, 0.0);
    EXPECT_GE(joules.switchPj, 0.0);
    EXPECT_GE(joules.fuPj, 0.0);
    EXPECT_GE(joules.staticPj, 0.0);
    EXPECT_GT(joules.computePj, 0.0) << "matmuls must cost MAC energy";
    EXPECT_GT(joules.staticPj, 0.0) << "nonzero runtime must leak";
    EXPECT_GT(joules.totalPj(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Matrix, ScenarioCell,
                         ::testing::Combine(allChips(), allWorkloads(),
                                            allCompilers()),
                         cellName<ScenarioCell::ParamType>);

/** CMSwitch vs every baseline on one (chip, workload) pair. */
class ScenarioDominance
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>>
{
};

TEST_P(ScenarioDominance, CmSwitchNeverSlowerThanAnyBaseline)
{
    auto [chip_name, workload_name] = GetParam();
    ChipConfig chip = scenarioChip(chip_name);
    Graph graph = scenarioWorkload(workload_name);

    Cycles ours = scenarioCompiler("cmswitch", chip)->compile(graph)
                      .totalCycles();
    for (const std::string &baseline : scenarioCompilerNames()) {
        if (baseline == "cmswitch")
            continue;
        Cycles theirs =
            scenarioCompiler(baseline, chip)->compile(graph).totalCycles();
        EXPECT_LE(ours, theirs)
            << "cmswitch slower than " << baseline << " on " << chip_name
            << " / " << workload_name;
    }
}

INSTANTIATE_TEST_SUITE_P(Matrix, ScenarioDominance,
                         ::testing::Combine(allChips(), allWorkloads()),
                         cellName<ScenarioDominance::ParamType>);

/** Decode steps want memory mode more than CNNs do, on every chip. */
class ScenarioModePressure : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ScenarioModePressure, DecodeRunsMoreMemoryModeThanCnn)
{
    ChipConfig chip = scenarioChip(GetParam());
    auto compiler = scenarioCompiler("cmswitch", chip);
    double decode_ratio =
        compiler->compile(scenarioWorkload("opt-6.7b-decode"))
            .avgMemoryArrayRatio();
    double cnn_ratio = compiler->compile(scenarioWorkload("resnet18"))
                           .avgMemoryArrayRatio();
    EXPECT_GT(decode_ratio, cnn_ratio);
}

INSTANTIATE_TEST_SUITE_P(Matrix, ScenarioModePressure, allChips(),
                         [](const ::testing::TestParamInfo<std::string> &i) {
                             return i.param;
                         });

} // namespace
} // namespace cmswitch
