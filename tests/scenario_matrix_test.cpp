/**
 * @file
 * Scenario matrix: sweep {dynaplasia, prime, tiny} chips x {resnet18,
 * mobilenetv2, bert-base prefill, opt-6.7b decode} workloads x
 * {cmswitch, cim-mlc, occ, puma} compilers and pin the cross-cutting
 * invariants the paper's figures rely on:
 *
 *  - every cell produces a validator-clean meta-operator program;
 *  - latency is positive and its breakdown sums to the total, energy is
 *    positive with a non-negative breakdown;
 *  - CMSwitch is never slower than any baseline on the same cell
 *    (Fig. 14 dominance);
 *  - decode workloads run a higher memory-mode array ratio than CNNs on
 *    every chip (Fig. 1/16 motivation), at transformer depth 2 AND 4.
 *
 * Each claim lives here as a test rather than only as a bench figure,
 * so perf/refactor PRs land against a green cross-product gate.
 *
 * The e2e sweep runs transformers at kE2eTransformerLayers (4), twice
 * the tier1 scale, so inter-segment scheduling is exercised at real
 * depth. All compiles route through testing::scenarioCompile's shared
 * plan cache: the dominance and mode-pressure sweeps reuse the cell
 * sweep's plans instead of recompiling each (chip, workload, compiler)
 * pair, and with CMSWITCH_SCENARIO_CACHE_DIR set (tests/CMakeLists.txt
 * does) the plans persist on disk across test processes.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <tuple>

#include "scenario_util.hpp"

namespace cmswitch {
namespace {

using ::cmswitch::testing::kE2eTransformerLayers;
using ::cmswitch::testing::kTier1TransformerLayers;
using ::cmswitch::testing::scenarioChipNames;
using ::cmswitch::testing::scenarioCompile;
using ::cmswitch::testing::scenarioCompilerNames;
using ::cmswitch::testing::scenarioWorkloadNames;

/** gtest-safe name: parameter tuples joined with non-alnum squashed. */
template <typename Tuple>
std::string
cellName(const ::testing::TestParamInfo<Tuple> &info)
{
    std::string joined = std::apply(
        [](const auto &...part) {
            std::string out;
            ((out += out.empty() ? part : "__" + part), ...);
            return out;
        },
        info.param);
    for (char &c : joined)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return joined;
}

auto
allChips()
{
    return ::testing::ValuesIn(scenarioChipNames());
}

auto
allWorkloads()
{
    return ::testing::ValuesIn(scenarioWorkloadNames());
}

auto
allCompilers()
{
    return ::testing::ValuesIn(scenarioCompilerNames());
}

/** One (chip, workload, compiler) cell of the matrix. */
class ScenarioCell
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string, std::string>>
{
};

TEST_P(ScenarioCell, ProgramValidAndBreakdownsConsistent)
{
    auto [chip_name, workload_name, compiler_name] = GetParam();
    ArtifactPtr artifact = scenarioCompile(chip_name, workload_name,
                                           compiler_name,
                                           kE2eTransformerLayers);
    const CompileResult &r = artifact->result;

    EXPECT_TRUE(artifact->validation.ok()) << artifact->validation.summary();

    // Latency: positive total, non-negative components, exact sum.
    EXPECT_GT(r.totalCycles(), 0);
    EXPECT_GE(r.latency.intra, 0);
    EXPECT_GE(r.latency.writeback, 0);
    EXPECT_GE(r.latency.modeSwitch, 0);
    EXPECT_GE(r.latency.rewrite, 0);
    EXPECT_EQ(r.totalCycles(), r.latency.intra + r.latency.writeback
                                   + r.latency.modeSwitch
                                   + r.latency.rewrite);

    // Program shape: at least one segment, ratio is a valid fraction.
    EXPECT_GE(r.numSegments(), 1);
    EXPECT_GE(r.avgMemoryArrayRatio(), 0.0);
    EXPECT_LE(r.avgMemoryArrayRatio(), 1.0);
    EXPECT_GE(r.compileSeconds, 0.0);

    // Energy: positive total, non-negative breakdown, components that
    // must be exercised by any matmul workload actually are.
    const EnergyReport &joules = artifact->energy;
    EXPECT_GE(joules.computePj, 0.0);
    EXPECT_GE(joules.memoryPj, 0.0);
    EXPECT_GE(joules.rewritePj, 0.0);
    EXPECT_GE(joules.dmaPj, 0.0);
    EXPECT_GE(joules.switchPj, 0.0);
    EXPECT_GE(joules.fuPj, 0.0);
    EXPECT_GE(joules.staticPj, 0.0);
    EXPECT_GT(joules.computePj, 0.0) << "matmuls must cost MAC energy";
    EXPECT_GT(joules.staticPj, 0.0) << "nonzero runtime must leak";
    EXPECT_GT(joules.totalPj(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Matrix, ScenarioCell,
                         ::testing::Combine(allChips(), allWorkloads(),
                                            allCompilers()),
                         cellName<ScenarioCell::ParamType>);

/** CMSwitch vs every baseline on one (chip, workload) pair. */
class ScenarioDominance
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>>
{
};

TEST_P(ScenarioDominance, CmSwitchNeverSlowerThanAnyBaseline)
{
    auto [chip_name, workload_name] = GetParam();
    Cycles ours = scenarioCompile(chip_name, workload_name, "cmswitch",
                                  kE2eTransformerLayers)
                      ->result.totalCycles();
    for (const std::string &baseline : scenarioCompilerNames()) {
        if (baseline == "cmswitch")
            continue;
        Cycles theirs = scenarioCompile(chip_name, workload_name, baseline,
                                        kE2eTransformerLayers)
                            ->result.totalCycles();
        EXPECT_LE(ours, theirs)
            << "cmswitch slower than " << baseline << " on " << chip_name
            << " / " << workload_name;
    }
}

INSTANTIATE_TEST_SUITE_P(Matrix, ScenarioDominance,
                         ::testing::Combine(allChips(), allWorkloads()),
                         cellName<ScenarioDominance::ParamType>);

/**
 * Decode steps want memory mode more than CNNs do, on every chip — and
 * the dominance must survive deepening the transformer from the tier1
 * scale (2 layers) to the e2e scale (4): depth multiplies segments, it
 * does not dilute the decode phase's memory-mode pressure.
 */
class ScenarioModePressure
    : public ::testing::TestWithParam<std::tuple<std::string, s64>>
{
};

TEST_P(ScenarioModePressure, DecodeRunsMoreMemoryModeThanCnn)
{
    auto [chip_name, layers] = GetParam();
    double decode_ratio =
        scenarioCompile(chip_name, "opt-6.7b-decode", "cmswitch", layers)
            ->result.avgMemoryArrayRatio();
    double cnn_ratio =
        scenarioCompile(chip_name, "resnet18", "cmswitch", layers)
            ->result.avgMemoryArrayRatio();
    EXPECT_GT(decode_ratio, cnn_ratio)
        << "at transformer depth " << layers;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ScenarioModePressure,
    ::testing::Combine(allChips(),
                       ::testing::Values(kTier1TransformerLayers,
                                         kE2eTransformerLayers)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, s64>> &i) {
        return std::get<0>(i.param) + "__depth"
             + std::to_string(std::get<1>(i.param));
    });

} // namespace
} // namespace cmswitch
