/**
 * @file
 * Tests for the discrete-event serving simulator: the strict scenario
 * parser, the service-time split (parity against sim::timing on a
 * single request — the one chain that keeps fleet results honest),
 * byte-determinism of the report across runs and compile thread
 * counts, dual-mode occupancy (resident plans skip reconfiguration),
 * an analytic M/D/1 mean-wait cross-check with a saturation
 * counterpart, and KV-bucket plan routing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "arch/deha.hpp"
#include "service/compile_service.hpp"
#include "service/serve/serve_protocol.hpp"
#include "sim/serving/scenario.hpp"
#include "sim/serving/service_time.hpp"
#include "sim/serving/simulator.hpp"
#include "sim/timing.hpp"

namespace cmswitch {
namespace {

/** Compile one plan the way the simulator does, outside the sim. */
ArtifactPtr
compilePlan(const std::string &model, const std::string &chip,
            s64 decodeKv = 0, s64 layers = 0)
{
    ServeRequest wire;
    wire.model = model;
    wire.chip = chip;
    wire.decodeKv = decodeKv;
    wire.layers = layers;
    CompileRequest request;
    std::string error;
    EXPECT_TRUE(resolveServeRequest(wire, &request, &error)) << error;
    return compileArtifact(request);
}

TimingReport
priceWithTimingSimulator(const CompileArtifact &artifact)
{
    return TimingSimulator(Deha(artifact.chip))
        .run(artifact.result.program);
}

TEST(SimScenario, ParserAcceptsFullDocument)
{
    SimScenario scenario;
    std::string error;
    ASSERT_TRUE(parseSimScenario(R"({
        "schema": "cmswitch-sim-scenario-v1",
        "name": "full",
        "seed": 99,
        "duration_seconds": 12.5,
        "max_queue": 4,
        "discipline": "fifo",
        "arrival": {"process": "poisson", "rate_per_second": 3.5},
        "chips": [
            {"chip": "dynaplasia", "count": 2, "clock_ghz": 1.0},
            {"chip": "prime", "clock_ghz": 0.8}
        ],
        "workloads": [
            {"name": "decode", "model": "opt-6.7b", "layers": 2,
             "weight": 3.0, "priority": 2, "deadline_ms": 50,
             "kv_buckets": [128, 256], "kv_min": 16},
            {"model": "tiny-mlp"}
        ]
    })",
                                 &scenario, &error))
        << error;

    EXPECT_EQ(scenario.name, "full");
    EXPECT_EQ(scenario.seed, 99u);
    EXPECT_DOUBLE_EQ(scenario.durationSeconds, 12.5);
    EXPECT_EQ(scenario.maxQueue, 4);
    EXPECT_TRUE(scenario.fifo);
    EXPECT_EQ(scenario.arrival.process,
              SimArrivalSpec::Process::kPoisson);
    EXPECT_DOUBLE_EQ(scenario.arrival.ratePerSecond, 3.5);
    ASSERT_EQ(scenario.chips.size(), 2u);
    EXPECT_EQ(scenario.chips[0].preset, "dynaplasia");
    EXPECT_EQ(scenario.chips[0].count, 2);
    EXPECT_EQ(scenario.chips[1].count, 1);
    ASSERT_EQ(scenario.workloads.size(), 2u);
    const SimWorkloadSpec &decode = scenario.workloads[0];
    EXPECT_EQ(decode.name, "decode");
    EXPECT_EQ(decode.layers, 2);
    EXPECT_TRUE(decode.hasDeadline);
    EXPECT_EQ(decode.deadlineMs, 50);
    EXPECT_EQ(decode.kvBuckets, (std::vector<s64>{128, 256}));
    EXPECT_EQ(decode.kvMin, 16);
    EXPECT_EQ(decode.kvMax, 256); // defaults to the largest bucket
    // The second workload's name defaults to its model.
    EXPECT_EQ(scenario.workloads[1].name, "tiny-mlp");
    EXPECT_FALSE(scenario.workloads[1].hasDeadline);
}

TEST(SimScenario, ParserRejectsBadDocuments)
{
    const char *kHeader = R"("schema": "cmswitch-sim-scenario-v1",
        "duration_seconds": 1.0,
        "arrival": {"process": "poisson", "rate_per_second": 1.0},
        "chips": [{"chip": "dynaplasia"}],)";
    struct Case
    {
        const char *doc;
        const char *needle; ///< must appear in the error message
    };
    const Case kCases[] = {
        {R"({"schema": "bogus"})", "schema"},
        {R"({"schema": "cmswitch-sim-scenario-v1", "typo": 1})",
         "unknown key 'typo'"},
        // Poisson/onoff need a positive horizon and rates.
        {R"({"schema": "cmswitch-sim-scenario-v1",
             "arrival": {"process": "poisson", "rate_per_second": 1.0},
             "chips": [{"chip": "dynaplasia"}],
             "workloads": [{"model": "tiny-mlp"}]})",
         "duration_seconds"},
        {R"({"schema": "cmswitch-sim-scenario-v1", "duration_seconds": 1.0,
             "arrival": {"process": "poisson"},
             "chips": [{"chip": "dynaplasia"}],
             "workloads": [{"model": "tiny-mlp"}]})",
         "rate_per_second"},
        {R"({"schema": "cmswitch-sim-scenario-v1", "duration_seconds": 1.0,
             "arrival": {"process": "onoff", "burst_rate_per_second": 5.0},
             "chips": [{"chip": "dynaplasia"}],
             "workloads": [{"model": "tiny-mlp"}]})",
         "onoff"},
        {R"({"schema": "cmswitch-sim-scenario-v1",
             "arrival": {"process": "trace",
                         "times_seconds": [2.0, 1.0]},
             "chips": [{"chip": "dynaplasia"}],
             "workloads": [{"model": "tiny-mlp"}]})",
         "sorted"},
        {R"({"schema": "cmswitch-sim-scenario-v1",
             "arrival": {"process": "warp", "rate_per_second": 1.0},
             "chips": [{"chip": "dynaplasia"}],
             "workloads": [{"model": "tiny-mlp"}]})",
         "unknown arrival process"},
    };
    for (const Case &c : kCases) {
        SimScenario scenario;
        std::string error;
        EXPECT_FALSE(parseSimScenario(c.doc, &scenario, &error)) << c.doc;
        EXPECT_NE(error.find(c.needle), std::string::npos)
            << "error '" << error << "' lacks '" << c.needle << "'";
    }

    // Name-table and workload-shape failures, sharing the valid header.
    const char *kWorkloadCases[] = {
        R"("workloads": [{"model": "no-such-model"}])",
        R"("workloads": [{"model": "tiny-mlp", "compiler": "llvm"}])",
        R"("workloads": [{"model": "tiny-mlp", "weight": 0}])",
        R"("workloads": [{"model": "tiny-mlp", "name": "a"},
                         {"model": "tiny-mlp", "name": "a"}])",
        // kv_buckets: transformer-only, strictly increasing, and the
        // kv range must sit inside them.
        R"("workloads": [{"model": "tiny-mlp", "kv_buckets": [8]}])",
        R"("workloads": [{"model": "opt-6.7b",
                          "kv_buckets": [32, 32]}])",
        R"("workloads": [{"model": "opt-6.7b", "kv_buckets": [32],
                          "kv_max": 64}])",
        R"("workloads": [{"model": "opt-6.7b", "kv_min": 4}])",
        R"("workloads": [])",
    };
    for (const char *tail : kWorkloadCases) {
        std::string doc = std::string("{") + kHeader + tail + "}";
        SimScenario scenario;
        std::string error;
        EXPECT_FALSE(parseSimScenario(doc, &scenario, &error)) << doc;
        EXPECT_FALSE(error.empty());
    }

    {
        SimScenario scenario;
        std::string error;
        const char *doc = R"({"schema": "cmswitch-sim-scenario-v1",
            "duration_seconds": 1.0,
            "arrival": {"process": "poisson", "rate_per_second": 1.0},
            "chips": [{"chip": "et99"}],
            "workloads": [{"model": "tiny-mlp"}]})";
        EXPECT_FALSE(parseSimScenario(doc, &scenario, &error));
        EXPECT_NE(error.find("unknown chip"), std::string::npos) << error;
    }
    {
        SimScenario scenario;
        std::string error;
        std::string doc = std::string("{") + kHeader
                          + R"("discipline": "lifo",
                               "workloads": [{"model": "tiny-mlp"}]})";
        EXPECT_FALSE(parseSimScenario(doc, &scenario, &error));
        EXPECT_NE(error.find("unknown discipline"), std::string::npos)
            << error;
    }
}

TEST(SimServiceTime, SplitCoversTheWholeBreakdown)
{
    ArtifactPtr artifact = compilePlan("tiny-mlp", "dynaplasia");
    ASSERT_TRUE(artifact);
    TimingReport timing = priceWithTimingSimulator(*artifact);

    // cold = resident + reconfigure, and cold is the breakdown's own
    // total — no field dropped or double-counted by the split.
    EXPECT_EQ(planColdCycles(timing.breakdown),
              planResidentCycles(timing.breakdown)
                  + planReconfigureCycles(timing.breakdown));
    EXPECT_EQ(planColdCycles(timing.breakdown), timing.total());
    EXPECT_GT(planResidentCycles(timing.breakdown), 0u);

    // 2 GHz: two billion cycles per second.
    EXPECT_DOUBLE_EQ(cyclesToSeconds(2'000'000'000, 2.0), 1.0);
    EXPECT_DOUBLE_EQ(cyclesToSeconds(0, 1.0), 0.0);
}

/**
 * Parity: one request through the whole simulator equals the plan
 * priced by sim::timing directly. A single trace arrival at t=0 on one
 * 1 GHz chip must spend exactly coldCycles/1e9 seconds in service,
 * wait zero, and leave the chip 100% utilised over the makespan.
 */
TEST(SimServing, SingleRequestMatchesTimingSimulator)
{
    SimScenario scenario;
    scenario.name = "parity";
    scenario.seed = 7;
    scenario.arrival.process = SimArrivalSpec::Process::kTrace;
    scenario.arrival.timesSeconds = {0.0};
    scenario.chips.push_back(SimChipSpec{});
    scenario.workloads.push_back(SimWorkloadSpec{});
    scenario.workloads.back().name = "tiny-mlp";
    scenario.workloads.back().model = "tiny-mlp";

    SimResult result;
    std::string error;
    ASSERT_TRUE(
        runServingSimulation(scenario, ServingSimOptions{}, &result,
                             &error))
        << error;

    ArtifactPtr artifact = compilePlan("tiny-mlp", "dynaplasia");
    ASSERT_TRUE(artifact);
    TimingReport timing = priceWithTimingSimulator(*artifact);
    double cold = cyclesToSeconds(planColdCycles(timing.breakdown), 1.0);

    EXPECT_EQ(result.arrived, 1);
    EXPECT_EQ(result.completed, 1);
    ASSERT_EQ(result.plans.size(), 1u);
    const SimPlan &plan = result.plans[0];
    EXPECT_EQ(plan.key, artifact->key);
    EXPECT_EQ(plan.coldCycles, planColdCycles(timing.breakdown));
    EXPECT_EQ(plan.residentCycles,
              planResidentCycles(timing.breakdown));
    EXPECT_EQ(plan.reconfigureCycles,
              planReconfigureCycles(timing.breakdown));
    EXPECT_EQ(plan.switchedArrays, timing.switchedArrays);
    EXPECT_EQ(plan.served, 1);

    // min/max/sum of a LogHistogram are exact, so the parity holds to
    // the double, not just within the estimator bound.
    EXPECT_EQ(result.serviceSeconds.count(), 1);
    EXPECT_DOUBLE_EQ(result.serviceSeconds.min(), cold);
    EXPECT_DOUBLE_EQ(result.serviceSeconds.max(), cold);
    EXPECT_DOUBLE_EQ(result.queueWaitSeconds.max(), 0.0);
    EXPECT_DOUBLE_EQ(result.totalSeconds.max(), cold);
    EXPECT_DOUBLE_EQ(result.makespanSeconds, cold);

    ASSERT_EQ(result.chips.size(), 1u);
    EXPECT_EQ(result.chips[0].installs, 1);
    EXPECT_EQ(result.chips[0].switchedArrays, timing.switchedArrays);
    EXPECT_DOUBLE_EQ(result.chips[0].busySeconds, cold);
    EXPECT_DOUBLE_EQ(result.chips[0].utilization, 1.0);
    ASSERT_EQ(result.workloads.size(), 1u);
    EXPECT_EQ(result.workloads[0].completed, 1);
}

/**
 * The determinism contract: equal scenarios emit byte-identical
 * reports, run to run and across compile thread counts (the pool
 * parallelises plan compilation only; the event loop and the report
 * order never depend on compile completion order).
 */
TEST(SimServing, ReportIsByteIdenticalAcrossRunsAndThreads)
{
    SimScenario scenario;
    std::string error;
    ASSERT_TRUE(parseSimScenario(R"({
        "schema": "cmswitch-sim-scenario-v1",
        "name": "determinism",
        "seed": 42,
        "duration_seconds": 10.0,
        "max_queue": 8,
        "arrival": {"process": "poisson", "rate_per_second": 5.0},
        "chips": [
            {"chip": "dynaplasia", "count": 1, "clock_ghz": 1.0},
            {"chip": "prime", "count": 1, "clock_ghz": 1.2}
        ],
        "workloads": [{"model": "tiny-mlp"}]
    })",
                                 &scenario, &error))
        << error;

    std::string reports[3];
    for (int i = 0; i < 3; ++i) {
        ServingSimOptions options;
        options.compileThreads = i == 2 ? 4 : 1;
        SimResult result;
        ASSERT_TRUE(
            runServingSimulation(scenario, options, &result, &error))
            << error;
        EXPECT_GT(result.arrived, 0);
        reports[i] = renderSimReport(scenario, result);
    }
    EXPECT_EQ(reports[0], reports[1]);
    EXPECT_EQ(reports[0], reports[2]);
}

/**
 * Dual-mode occupancy: the second request for a plan already resident
 * on the chip's arrays skips the reconfiguration prologue. Two trace
 * arrivals, the second after the first finished: one install, service
 * times exactly cold then resident.
 */
TEST(SimServing, ResidentPlanSkipsReconfiguration)
{
    ArtifactPtr artifact = compilePlan("tiny-mlp", "dynaplasia");
    ASSERT_TRUE(artifact);
    TimingReport timing = priceWithTimingSimulator(*artifact);
    double cold = cyclesToSeconds(planColdCycles(timing.breakdown), 1.0);
    double resident =
        cyclesToSeconds(planResidentCycles(timing.breakdown), 1.0);

    SimScenario scenario;
    scenario.name = "occupancy";
    scenario.seed = 3;
    scenario.arrival.process = SimArrivalSpec::Process::kTrace;
    scenario.arrival.timesSeconds = {0.0, 2.0 * cold};
    scenario.chips.push_back(SimChipSpec{});
    scenario.workloads.push_back(SimWorkloadSpec{});
    scenario.workloads.back().name = "tiny-mlp";
    scenario.workloads.back().model = "tiny-mlp";

    SimResult result;
    std::string error;
    ASSERT_TRUE(
        runServingSimulation(scenario, ServingSimOptions{}, &result,
                             &error))
        << error;

    EXPECT_EQ(result.completed, 2);
    ASSERT_EQ(result.chips.size(), 1u);
    EXPECT_EQ(result.chips[0].installs, 1); // one reconfigure, not two
    EXPECT_DOUBLE_EQ(result.serviceSeconds.max(), cold);
    EXPECT_DOUBLE_EQ(result.serviceSeconds.min(), resident);
    EXPECT_DOUBLE_EQ(result.chips[0].busySeconds, cold + resident);
    EXPECT_DOUBLE_EQ(result.chips[0].reconfigureSeconds, cold - resident);
    EXPECT_DOUBLE_EQ(result.queueWaitSeconds.max(), 0.0);
    ASSERT_EQ(result.plans.size(), 1u);
    EXPECT_EQ(result.plans[0].served, 2);
}

/**
 * Queueing-theory cross-check. A single chip serving one resident plan
 * is an M/D/1 queue (Poisson arrivals, deterministic service s), whose
 * mean wait is Wq = rho * s / (2 * (1 - rho)). At rho = 0.5 the
 * simulated mean wait must land near 0.5 * s. Then the saturated
 * counterpart (rho = 5, finite queue): throughput plateaus at the
 * service capacity 1/s, admission control sheds, and tail latency
 * inflates past the unsaturated run's.
 */
TEST(SimServing, AnalyticMeanWaitAndSaturation)
{
    ArtifactPtr artifact = compilePlan("tiny-mlp", "dynaplasia");
    ASSERT_TRUE(artifact);
    TimingReport timing = priceWithTimingSimulator(*artifact);
    double s = cyclesToSeconds(planResidentCycles(timing.breakdown), 1.0);
    ASSERT_GT(s, 0.0);

    SimScenario scenario;
    scenario.name = "md1";
    scenario.seed = 11;
    scenario.durationSeconds = 2000.0 * s;
    scenario.maxQueue = 100000;
    scenario.arrival.process = SimArrivalSpec::Process::kPoisson;
    scenario.arrival.ratePerSecond = 0.5 / s; // rho = 0.5
    scenario.chips.push_back(SimChipSpec{});
    scenario.workloads.push_back(SimWorkloadSpec{});
    scenario.workloads.back().name = "tiny-mlp";
    scenario.workloads.back().model = "tiny-mlp";

    SimResult relaxed;
    std::string error;
    ASSERT_TRUE(
        runServingSimulation(scenario, ServingSimOptions{}, &relaxed,
                             &error))
        << error;
    ASSERT_GT(relaxed.completed, 500); // ~1000 expected at this rate
    EXPECT_EQ(relaxed.shedAdmission, 0);
    EXPECT_EQ(relaxed.completed, relaxed.arrived);

    double meanWait = relaxed.queueWaitSeconds.sum()
                      / static_cast<double>(
                          relaxed.queueWaitSeconds.count());
    double analytic = 0.5 * s; // rho*s / (2*(1-rho)) at rho = 0.5
    EXPECT_NEAR(meanWait, analytic, 0.25 * analytic)
        << "simulated mean wait " << meanWait << " vs M/D/1 "
        << analytic;

    // Saturation: offered load 5x capacity against a 4-slot queue.
    scenario.name = "saturated";
    scenario.durationSeconds = 300.0 * s;
    scenario.maxQueue = 4;
    scenario.arrival.ratePerSecond = 5.0 / s;
    SimResult saturated;
    ASSERT_TRUE(
        runServingSimulation(scenario, ServingSimOptions{}, &saturated,
                             &error))
        << error;

    EXPECT_GT(saturated.shedAdmission, 0);
    EXPECT_EQ(saturated.arrived,
              saturated.completed + saturated.shedAdmission
                  + saturated.shedDeadline);
    // Throughput plateaus at the chip's capacity...
    EXPECT_NEAR(saturated.throughputPerSecond(), 1.0 / s, 0.1 / s);
    EXPECT_GT(saturated.chips[0].utilization, 0.9);
    // ...while the p99 end-to-end latency inflates.
    EXPECT_GT(saturated.totalSeconds.quantile(0.99),
              relaxed.totalSeconds.quantile(0.99));
}

/**
 * KV-bucket decode routing: a decode workload with buckets [128, 256]
 * compiles one plan per bucket, every request lands on the plan of the
 * smallest bucket covering its drawn KV length, and the per-plan
 * served counts add back up to the completed total.
 */
TEST(SimServing, KvBucketsRouteRequestsToPlans)
{
    SimScenario scenario;
    std::string error;
    ASSERT_TRUE(parseSimScenario(R"({
        "schema": "cmswitch-sim-scenario-v1",
        "name": "kv",
        "seed": 5,
        "duration_seconds": 10.0,
        "max_queue": 64,
        "arrival": {"process": "poisson", "rate_per_second": 4.0},
        "chips": [{"chip": "dynaplasia", "clock_ghz": 1.0}],
        "workloads": [{
            "name": "decode", "model": "opt-6.7b", "layers": 2,
            "kv_buckets": [128, 256]
        }]
    })",
                                 &scenario, &error))
        << error;

    SimResult result;
    ASSERT_TRUE(
        runServingSimulation(scenario, ServingSimOptions{}, &result,
                             &error))
        << error;

    ASSERT_EQ(result.plans.size(), 2u);
    EXPECT_EQ(result.plans[0].kvBucket, 128);
    EXPECT_EQ(result.plans[1].kvBucket, 256);
    EXPECT_NE(result.plans[0].key, result.plans[1].key);
    EXPECT_GT(result.arrived, 10);
    EXPECT_EQ(result.completed, result.arrived); // queue drains
    // With kv ~ U[1, 256], both buckets serve (~half each), and the
    // plan tallies partition the completed requests.
    EXPECT_GT(result.plans[0].served, 0);
    EXPECT_GT(result.plans[1].served, 0);
    EXPECT_EQ(result.plans[0].served + result.plans[1].served,
              result.completed);
}

} // namespace
} // namespace cmswitch
