# The persistent plan cache acceptance gate, driven through real
# cmswitchc processes (the cross-process claim needs processes, not
# threads):
#   1. two successive single-mode runs with one --cache-dir: byte-
#      identical reports, the second reporting a disk hit on stderr;
#   2. corrupted / truncated / version-bumped artifact files silently
#      recompile and still produce the identical report;
#   3. `cache stats` sees the *lifetime* totals those five processes
#      merged into the stats sidecar — including the incremental
#      neighbor counters: the first compile has no retained warm state
#      (1 miss), the three damaged-artifact recompiles warm-start from
#      the first run's .warm sidecar (3 hits) and still byte-match;
#   4. the full 3-chip x 4-workload x 4-compiler batch matrix run cold
#      (serial) then warm (4 threads) over a shared --cache-dir: the
#      warm pass compiles nothing (every unique key is a disk hit),
#      every per-job report is byte-identical to the cold serial run,
#      and the v5 summaries carry matching sidecar/fingerprint fields;
#   4b. the parallel plan search swept across real processes: a cold
#      batch at --search-threads 8 (own cache dir, so all 48 cells
#      really compile through the parallel search) must byte-match
#      every cold-serial report, and a warm --search-threads 2 batch
#      over the shared cache dir must serve every key from disk —
#      plans cached at width 1 satisfy requests at any width;
#   5. `cache verify` passes the warm directory, `cache gc
#      --max-bytes 0` then reaps every artifact but never the sidecar.
# Run as `cmake -DCMSWITCHC=<exe> -DWORK_DIR=<dir> -P cache_smoke.cmake`.

if(NOT CMSWITCHC)
    message(FATAL_ERROR "pass -DCMSWITCHC=<path to cmswitchc>")
endif()
if(NOT WORK_DIR)
    message(FATAL_ERROR "pass -DWORK_DIR=<scratch directory>")
endif()

# A failed run aborts mid-script (FATAL_ERROR) and leaves its scratch
# tree behind; this guard removes any such leftovers so repeated local
# runs always start cold. The tail of a *successful* run removes the
# tree too.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(cache_dir ${WORK_DIR}/plan-cache)

# --- 1. single mode: second process must warm-start from disk ---------

function(run_single report expect_pattern)
    execute_process(COMMAND ${CMSWITCHC} --model resnet18 --stats
                            --emit-json ${report} --cache-dir ${cache_dir}
                    RESULT_VARIABLE result
                    ERROR_VARIABLE err)
    if(NOT result EQUAL 0)
        message(FATAL_ERROR "cmswitchc --cache-dir failed (${result}):\n${err}")
    endif()
    if(NOT err MATCHES "${expect_pattern}")
        message(FATAL_ERROR "expected stderr to match '${expect_pattern}', "
                            "got:\n${err}")
    endif()
endfunction()

run_single(${WORK_DIR}/cold.json "plan cache miss; stored")
run_single(${WORK_DIR}/warm.json "plan cache disk hit")

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORK_DIR}/cold.json ${WORK_DIR}/warm.json
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
    message(FATAL_ERROR "cold and warm single-mode reports differ")
endif()

# --- 2. damaged artifacts must silently recompile ---------------------

file(GLOB plans ${cache_dir}/*.plan)
list(LENGTH plans plan_count)
if(NOT plan_count EQUAL 1)
    message(FATAL_ERROR "expected 1 plan file after single runs, "
                        "got ${plan_count}")
endif()
list(GET plans 0 plan_file)

# Bit corruption (same size, different content).
file(WRITE ${plan_file} "cmswitch-plan-v1\nthis is not a real artifact")
run_single(${WORK_DIR}/recompiled.json "plan cache miss; stored")
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORK_DIR}/cold.json ${WORK_DIR}/recompiled.json
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
    message(FATAL_ERROR "report after corrupt-artifact recompile differs")
endif()

# Version mismatch: a v2 tag from the future must be ignored by the v1
# reader (new tag == new format; old readers reject, recompile, and
# overwrite).
file(WRITE ${plan_file} "cmswitch-plan-v2\npayload from the future")
run_single(${WORK_DIR}/devolved.json "plan cache miss; stored")
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORK_DIR}/cold.json ${WORK_DIR}/devolved.json
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
    message(FATAL_ERROR "report after version-mismatch recompile differs")
endif()

# Truncation: an empty (or cut-short) plan file recompiles too.
file(WRITE ${plan_file} "")
run_single(${WORK_DIR}/retruncated.json "plan cache miss; stored")
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORK_DIR}/cold.json ${WORK_DIR}/retruncated.json
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
    message(FATAL_ERROR "report after truncated-artifact recompile differs")
endif()

# --- 3. cache stats: lifetime totals survive across processes ---------

# run_cache(<out_var> <verb> <args...>): run a `cmswitchc cache` verb
# and return its stdout JSON report.
function(run_cache out_var verb)
    execute_process(COMMAND ${CMSWITCHC} cache ${verb} ${ARGN}
                    RESULT_VARIABLE result
                    OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT result EQUAL 0)
        message(FATAL_ERROR "cmswitchc cache ${verb} failed (${result}):\n"
                            "${err}")
    endif()
    set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# expect_json(<document> <expected> <path...>): check one JSON field.
function(expect_json document expected)
    string(JSON actual GET "${document}" ${ARGN})
    if(NOT actual STREQUAL expected)
        message(FATAL_ERROR "json ${ARGN}: expected '${expected}', "
                            "got '${actual}'")
    endif()
endfunction()

# Five single-mode processes touched the cache above: 1 cold miss+store,
# 1 warm hit, then 3 damaged-artifact runs (reject+miss+store each).
# Each process flushed its counters into the sidecar on exit; `cache
# stats` (a sixth process) must see the merged lifetime totals.
run_cache(stats_doc stats --cache-dir ${cache_dir})
expect_json("${stats_doc}" ON sidecar_present)
expect_json("${stats_doc}" 1 hits)
expect_json("${stats_doc}" 4 misses)
expect_json("${stats_doc}" 4 stores)
expect_json("${stats_doc}" 3 rejected)
expect_json("${stats_doc}" 1 plan_files)
# Incremental compilation: the cold run found no retained warm state
# (1 neighbor miss) and published a .warm sidecar; each damaged-artifact
# recompile warm-started from it (3 neighbor hits) — and stage 2 already
# proved those warm recompiles byte-match the cold report.
expect_json("${stats_doc}" 3 neighbor_hits)
expect_json("${stats_doc}" 0 neighbor_partials)
expect_json("${stats_doc}" 1 neighbor_misses)
string(JSON build_fingerprint GET "${stats_doc}" fingerprint)

# --- 4. batch matrix: cold serial, then warm multi-threaded -----------

set(tiny_chip ${WORK_DIR}/tiny.chip)
file(WRITE ${tiny_chip} "\
name = tiny
technology = edram
num_switch_arrays = 16
array_rows = 128
array_cols = 128
buffer_bytes = 64
internal_bw = 2
extern_bw = 4
buffer_bw = 1
op_per_cycle = 8
write_row_latency = 2
fu_ops_per_cycle = 16
")

set(workloads
    "--model resnet18"
    "--model mobilenetv2"
    "--model bert-base --layers 2 --seq 64"
    "--model opt-6.7b --decode 256 --layers 2")
set(compilers cmswitch cim-mlc occ puma)

set(jobs "# full scenario matrix\n")
set(job_count 0)
foreach(chip dynaplasia prime ${tiny_chip})
    foreach(workload IN LISTS workloads)
        foreach(compiler IN LISTS compilers)
            string(APPEND jobs
                   "${workload} --chip ${chip} --compiler ${compiler}\n")
            math(EXPR job_count "${job_count} + 1")
        endforeach()
    endforeach()
endforeach()
set(jobs_file ${WORK_DIR}/jobs.txt)
file(WRITE ${jobs_file} "${jobs}")
set(batch_cache ${WORK_DIR}/batch-plan-cache)

# run_batch(<threads> <out_dir> <cache_dir> [extra batch flags...])
function(run_batch threads out_dir cache)
    execute_process(COMMAND ${CMSWITCHC} batch --jobs ${jobs_file}
                            --threads ${threads} --out-dir ${out_dir}
                            --cache-dir ${cache} ${ARGN}
                    RESULT_VARIABLE result
                    ERROR_VARIABLE err)
    if(NOT result EQUAL 0)
        message(FATAL_ERROR "cmswitchc batch --threads ${threads} "
                            "${ARGN} --cache-dir failed (${result}):\n${err}")
    endif()
endfunction()

run_batch(1 ${WORK_DIR}/cold-serial ${batch_cache})
run_batch(4 ${WORK_DIR}/warm-mt ${batch_cache})

# expect_summary(<expected> <path...>): check one summary field.
function(expect_summary summary expected)
    string(JSON actual GET "${summary}" ${ARGN})
    if(NOT actual STREQUAL expected)
        message(FATAL_ERROR "summary ${ARGN}: expected '${expected}', "
                            "got '${actual}'")
    endif()
endfunction()

# Cold pass: nothing on disk yet -> every unique key misses disk and is
# stored; warm pass: every unique key is served from disk, zero stores.
# The v5 summaries also carry the cross-process sidecar totals (cold
# flushed before its summary, warm sees cold's flush plus its own) and
# the build fingerprint every process of this build agrees on.
file(READ ${WORK_DIR}/cold-serial/summary.json cold_summary)
expect_summary("${cold_summary}" cmswitch-batch-summary-v5 schema)
expect_summary("${cold_summary}" ${job_count} jobs)
expect_summary("${cold_summary}" 0 invalid_jobs)
expect_summary("${cold_summary}" ${job_count} cache disk_misses)
expect_summary("${cold_summary}" ${job_count} cache disk_stores)
expect_summary("${cold_summary}" 0 cache disk_hits)
expect_summary("${cold_summary}" 0 cache sidecar_hits)
expect_summary("${cold_summary}" ${job_count} cache sidecar_misses)
expect_summary("${cold_summary}" ${job_count} cache sidecar_stores)
expect_summary("${cold_summary}" 0 cache sidecar_touch_failed)
# Every matrix cell is a distinct structural family (chip x model x
# compiler), so the cold pass finds no warm neighbors anywhere.
expect_summary("${cold_summary}" 0 cache disk_neighbor_hits)
expect_summary("${cold_summary}" 0 cache disk_neighbor_partials)
expect_summary("${cold_summary}" ${job_count} cache disk_neighbor_misses)
expect_summary("${cold_summary}" ${job_count} cache sidecar_neighbor_misses)
expect_summary("${cold_summary}" ${build_fingerprint} cache fingerprint)
# v4: the latency section's deterministic halves — every cold job
# compiled (one kPhaseCompile sample each), every job executed.
expect_summary("${cold_summary}" ${job_count} latency compile_seconds count)
expect_summary("${cold_summary}" ${job_count} latency execute_seconds count)
expect_summary("${cold_summary}" ${job_count} latency queue_wait_seconds count)

file(READ ${WORK_DIR}/warm-mt/summary.json warm_summary)
expect_summary("${warm_summary}" 0 invalid_jobs)
expect_summary("${warm_summary}" ${job_count} cache disk_hits)
expect_summary("${warm_summary}" 0 cache disk_misses)
expect_summary("${warm_summary}" 0 cache disk_stores)
expect_summary("${warm_summary}" 0 cache disk_rejected)
expect_summary("${warm_summary}" ${job_count} cache sidecar_hits)
expect_summary("${warm_summary}" ${job_count} cache sidecar_misses)
expect_summary("${warm_summary}" ${job_count} cache sidecar_stores)
# Disk hits never reach the neighbor step of the lookup chain: the warm
# pass adds nothing to the neighbor totals.
expect_summary("${warm_summary}" 0 cache disk_neighbor_misses)
expect_summary("${warm_summary}" 0 cache disk_neighbor_hits)
expect_summary("${warm_summary}" ${job_count} cache sidecar_neighbor_misses)
expect_summary("${warm_summary}" ${build_fingerprint} cache fingerprint)
# Warm pass serves every job from disk: zero compiles, full executes.
expect_summary("${warm_summary}" 0 latency compile_seconds count)
expect_summary("${warm_summary}" ${job_count} latency execute_seconds count)

# Warm multi-threaded reports must be byte-identical to cold serial.
file(GLOB reports RELATIVE ${WORK_DIR}/cold-serial
     ${WORK_DIR}/cold-serial/job*.json)
list(LENGTH reports report_count)
if(NOT report_count EQUAL ${job_count})
    message(FATAL_ERROR "expected ${job_count} cold reports, "
                        "got ${report_count}")
endif()
foreach(report IN LISTS reports)
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                            ${WORK_DIR}/cold-serial/${report}
                            ${WORK_DIR}/warm-mt/${report}
                    RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
        message(FATAL_ERROR "${report} differs between the cold serial "
                            "and warm 4-thread runs")
    endif()
endforeach()

# --- 4b. parallel plan search across processes ------------------------

# Cold at --search-threads 8 against a fresh cache dir: every cell
# compiles through the parallel search in a real process, and every
# report must byte-match its cold-serial (--search-threads 1) twin.
run_batch(1 ${WORK_DIR}/cold-st8 ${WORK_DIR}/batch-plan-cache-st8
          --search-threads 8)
file(READ ${WORK_DIR}/cold-st8/summary.json st8_summary)
expect_summary("${st8_summary}" 8 search_threads)
expect_summary("${st8_summary}" 0 invalid_jobs)
expect_summary("${st8_summary}" ${job_count} cache disk_misses)
foreach(report IN LISTS reports)
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                            ${WORK_DIR}/cold-serial/${report}
                            ${WORK_DIR}/cold-st8/${report}
                    RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
        message(FATAL_ERROR "${report} differs between --search-threads 1 "
                            "(cold serial) and --search-threads 8 (cold)")
    endif()
endforeach()

# Warm at --search-threads 2 over the shared cache dir: searchThreads is
# not part of the request key, so plans stored by the width-1 cold run
# must serve every width-2 request from disk — zero compiles.
run_batch(2 ${WORK_DIR}/warm-st2 ${batch_cache} --search-threads 2)
file(READ ${WORK_DIR}/warm-st2/summary.json st2_summary)
expect_summary("${st2_summary}" 2 search_threads)
expect_summary("${st2_summary}" 0 invalid_jobs)
expect_summary("${st2_summary}" ${job_count} cache disk_hits)
expect_summary("${st2_summary}" 0 cache disk_misses)
expect_summary("${st2_summary}" 0 cache disk_stores)
foreach(report IN LISTS reports)
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                            ${WORK_DIR}/cold-serial/${report}
                            ${WORK_DIR}/warm-st2/${report}
                    RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
        message(FATAL_ERROR "${report} differs between the cold serial "
                            "and warm --search-threads 2 runs")
    endif()
endforeach()

# --- 5. lifecycle: verify passes, gc reaps plans but not the sidecar --

run_cache(verify_doc verify --cache-dir ${batch_cache})
expect_json("${verify_doc}" ${job_count} scanned_files)
expect_json("${verify_doc}" ${job_count} valid_files)
expect_json("${verify_doc}" 0 damaged_files)
expect_json("${verify_doc}" ON clean)

run_cache(gc_doc gc --cache-dir ${batch_cache} --max-bytes 0)
expect_json("${gc_doc}" ${job_count} scanned_files)
expect_json("${gc_doc}" ${job_count} deleted_files)
expect_json("${gc_doc}" 0 kept_files)

# Post-gc: the artifacts are gone, the sidecar totals are not. Two warm
# passes hit this cache dir (warm-mt and warm-st2), the cold pass
# missed+stored once per job.
run_cache(post_gc_stats stats --cache-dir ${batch_cache})
math(EXPR two_warm_passes "${job_count} * 2")
expect_json("${post_gc_stats}" 0 plan_files)
expect_json("${post_gc_stats}" ON sidecar_present)
expect_json("${post_gc_stats}" ${two_warm_passes} hits)
expect_json("${post_gc_stats}" ${job_count} misses)
expect_json("${post_gc_stats}" ${job_count} stores)
expect_json("${post_gc_stats}" 0 neighbor_hits)
expect_json("${post_gc_stats}" ${job_count} neighbor_misses)

message(STATUS "cache_smoke: single-mode warm start, damaged-artifact "
               "recompile, sidecar stats, ${job_count}-job warm batch, "
               "and gc/verify lifecycle all check out")

# Success: leave nothing behind (the guard at the top handles the
# leftovers of *failed* runs).
file(REMOVE_RECURSE "${WORK_DIR}")
