/** @file Tests for the frontend graph optimization passes. */

#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/passes.hpp"
#include "models/model_zoo.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

/** x -> fc -> (output), plus a dead side branch. */
Graph
graphWithDeadBranch()
{
    Graph g("deadbranch");
    TensorId x = g.addTensor("x", Shape{1, 16}, DType::kInt8,
                             TensorKind::kInput);
    TensorId w = g.addTensor("w", Shape{16, 16}, DType::kInt8,
                             TensorKind::kWeight);
    TensorId y = g.addTensor("y", Shape{1, 16}, DType::kInt8,
                             TensorKind::kOutput);
    Operator fc;
    fc.name = "fc";
    fc.kind = OpKind::kMatMul;
    fc.inputs = {x, w};
    fc.outputs = {y};
    g.addOp(fc);

    // Dead: relu feeding nothing.
    TensorId dead = g.addTensor("dead", Shape{1, 16});
    Operator relu;
    relu.name = "dead_relu";
    relu.kind = OpKind::kActivation;
    relu.activationName = "relu";
    relu.inputs = {x};
    relu.outputs = {dead};
    g.addOp(relu);
    return g;
}

TEST(DeadOps, RemovesUnreachableBranch)
{
    Graph g = graphWithDeadBranch();
    PassStats stats = eliminateDeadOps(&g);
    EXPECT_EQ(stats.removedOps, 1);
    EXPECT_EQ(g.numOps(), 1);
    g.validate();
    // The surviving op still computes the same thing.
    EXPECT_EQ(g.op(0).name, "fc");
}

TEST(DeadOps, KeepsEverythingWithoutOutputs)
{
    // Ad-hoc graphs without kOutput tensors are left untouched.
    Graph g("no-outputs");
    TensorId x = g.addTensor("x", Shape{1, 4}, DType::kInt8,
                             TensorKind::kInput);
    TensorId y = g.addTensor("y", Shape{1, 4});
    Operator relu;
    relu.name = "relu";
    relu.kind = OpKind::kActivation;
    relu.inputs = {x};
    relu.outputs = {y};
    g.addOp(relu);
    PassStats stats = eliminateDeadOps(&g);
    EXPECT_EQ(stats.removedOps, 0);
    EXPECT_EQ(g.numOps(), 1);
}

TEST(DeadOps, NoopOnCleanModels)
{
    Graph g = buildTinyMlp();
    PassStats stats = eliminateDeadOps(&g);
    EXPECT_EQ(stats.removedOps, 0);
    EXPECT_EQ(g.numOps(), 3);
}

TEST(ReshapeFold, CollapsesChain)
{
    Graph g("chainfold");
    TensorId x = g.addTensor("x", Shape{2, 8}, DType::kInt8,
                             TensorKind::kInput);
    TensorId r1 = g.addTensor("r1", Shape{4, 4});
    TensorId r2 = g.addTensor("r2", Shape{16});
    TensorId w = g.addTensor("w", Shape{16, 4}, DType::kInt8,
                             TensorKind::kWeight);
    TensorId y = g.addTensor("y", Shape{1, 4}, DType::kInt8,
                             TensorKind::kOutput);
    Operator a;
    a.name = "reshape1";
    a.kind = OpKind::kReshape;
    a.inputs = {x};
    a.outputs = {r1};
    g.addOp(a);
    Operator b;
    b.name = "reshape2";
    b.kind = OpKind::kReshape;
    b.inputs = {r1};
    b.outputs = {r2};
    g.addOp(b);
    TensorId r2m = g.addTensor("r2m", Shape{1, 16});
    Operator c;
    c.name = "reshape3";
    c.kind = OpKind::kReshape;
    c.inputs = {r2};
    c.outputs = {r2m};
    g.addOp(c);
    Operator fc;
    fc.name = "fc";
    fc.kind = OpKind::kMatMul;
    fc.inputs = {r2m, w};
    fc.outputs = {y};
    g.addOp(fc);

    PassStats stats = foldReshapeChains(&g);
    EXPECT_EQ(stats.removedOps, 2); // reshape1 + reshape2 bypassed
    g.validate();
    // The surviving reshape reads straight from x.
    bool found = false;
    for (const Operator &op : g.ops()) {
        if (op.kind == OpKind::kReshape) {
            found = true;
            EXPECT_EQ(g.tensor(op.inputs[0]).name, "x");
        }
    }
    EXPECT_TRUE(found);
}

TEST(ReshapeFold, PreservesSemantics)
{
    // Folding must not change analysis results of the surviving ops.
    Graph g = buildResNet18(1);
    GraphProfile before = profileGraph(g);
    PassStats stats = runFrontendPasses(&g);
    GraphProfile after = profileGraph(g);
    EXPECT_EQ(before.totalMacs, after.totalMacs);
    EXPECT_EQ(stats.removedOps, 0); // zoo models are already minimal
}

TEST(Passes, TransformerGraphStaysValid)
{
    TransformerConfig cfg = TransformerConfig::bertBase();
    cfg.layers = 2;
    Graph g = buildTransformerPrefill(cfg, 1, 32);
    s64 macs_before = profileGraph(g).totalMacs;
    runFrontendPasses(&g);
    EXPECT_EQ(profileGraph(g).totalMacs, macs_before);
    g.validate();
}

} // namespace
} // namespace cmswitch
