/**
 * @file
 * Shared helpers for the test suite: small chip configs, random
 * workload generators, and tiny hand-built graphs.
 */

#ifndef CMSWITCH_TESTS_TEST_UTIL_HPP
#define CMSWITCH_TESTS_TEST_UTIL_HPP

#include "arch/chip_config.hpp"
#include "cost/cost_model.hpp"
#include "graph/graph.hpp"
#include "support/random.hpp"
#include "support/strings.hpp"

namespace cmswitch::testing {

/** A midget chip: @p rowsCols x @p rowsCols arrays, a handful of them. */
inline ChipConfig
tinyChip(s64 arrays = 8, s64 rowsCols = 16)
{
    ChipConfig c;
    c.name = "tiny";
    c.numSwitchArrays = arrays;
    c.arrayRows = rowsCols;
    c.arrayCols = rowsCols;
    c.bufferBytes = 64;
    c.internalBwPerArray = 2.0;
    c.externBw = 4.0;
    c.bufferBw = 1.0;
    c.opPerCycle = 8.0;
    c.writeRowLatency = 2;
    c.fuOpsPerCycle = 16.0;
    return c;
}

/** Random CIM workload small enough for exhaustive allocation. */
inline OpWorkload
randomWorkload(Rng &rng, const ChipConfig &chip, s64 max_tiles = 3)
{
    OpWorkload w;
    w.name = "rnd";
    w.kind = OpKind::kMatMul;
    w.weightTiles = rng.nextInt(1, max_tiles);
    w.utilization = rng.nextDouble(0.4, 1.0);
    w.movingRows = rng.nextInt(1, 64);
    s64 weight_elems = static_cast<s64>(
        static_cast<double>(w.weightTiles * chip.arrayRows * chip.arrayCols)
        * w.utilization);
    w.weightBytes = std::max<s64>(1, weight_elems);
    w.macs = w.weightBytes * w.movingRows;
    w.inputBytes = rng.nextInt(16, 4096);
    w.outputBytes = rng.nextInt(16, 4096);
    w.vectorElems = rng.nextInt(0, 256);
    w.dynamicWeights = rng.nextInt(0, 4) == 0;
    w.aiMacsPerByte = static_cast<double>(w.macs)
                    / static_cast<double>(w.trafficBytes());
    return w;
}

/** Chain graph of @p n matmuls: in -> fc0 -> relu -> fc1 -> ... */
inline Graph
chainMlp(s64 n, s64 dim = 32, s64 batch = 2)
{
    Graph g("chain" + std::to_string(n));
    TensorId x = g.addTensor("x", Shape{batch, dim}, DType::kInt8,
                             TensorKind::kInput);
    for (s64 i = 0; i < n; ++i) {
        TensorId w = g.addTensor(concat("w", i), Shape{dim, dim},
                                 DType::kInt8, TensorKind::kWeight);
        bool last = i + 1 == n;
        TensorId y = g.addTensor(concat("y", i), Shape{batch, dim},
                                 DType::kInt8,
                                 last ? TensorKind::kOutput
                                      : TensorKind::kActivation);
        Operator op;
        op.name = "fc" + std::to_string(i);
        op.kind = OpKind::kMatMul;
        op.inputs = {x, w};
        op.outputs = {y};
        g.addOp(op);
        x = y;
    }
    g.validate();
    return g;
}

} // namespace cmswitch::testing

#endif // CMSWITCH_TESTS_TEST_UTIL_HPP
