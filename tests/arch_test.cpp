/** @file Unit tests for the DEHA hardware abstraction. */

#include <gtest/gtest.h>

#include "arch/deha.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

TEST(ChipConfig, DynaplasiaMatchesTable2)
{
    ChipConfig c = ChipConfig::dynaplasia();
    EXPECT_EQ(c.numSwitchArrays, 96);
    EXPECT_EQ(c.arrayRows, 320);
    EXPECT_EQ(c.arrayCols, 320);
    EXPECT_EQ(c.bufferBytes, 10 * 1024 * 8);
    EXPECT_EQ(c.switchC2mLatency, 1);
    EXPECT_EQ(c.switchM2cLatency, 1);
    EXPECT_EQ(c.arrayWeightBytes(), 320 * 320);
    c.validate(); // must not exit
}

TEST(ChipConfig, PrimeHasCostlyWrites)
{
    ChipConfig prime = ChipConfig::prime();
    ChipConfig dyna = ChipConfig::dynaplasia();
    EXPECT_GT(prime.writeArrayLatency(), 10 * dyna.writeArrayLatency());
    EXPECT_GT(prime.arrayWeightBytes(), dyna.arrayWeightBytes());
    prime.validate();
}

TEST(ChipConfigDeath, RejectsNonPhysical)
{
    ChipConfig c = ChipConfig::dynaplasia();
    c.numSwitchArrays = 0;
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1), "at least one");
}

TEST(Deha, WeightTiles)
{
    Deha deha(ChipConfig::dynaplasia());
    EXPECT_EQ(deha.weightTiles(320, 320), 1);
    EXPECT_EQ(deha.weightTiles(321, 320), 2);
    EXPECT_EQ(deha.weightTiles(640, 640), 4);
    EXPECT_EQ(deha.weightTiles(64, 64, 8), 8); // one tile per copy
}

TEST(Deha, UtilizationBounds)
{
    Deha deha(ChipConfig::dynaplasia());
    EXPECT_DOUBLE_EQ(deha.tileUtilization(320, 320), 1.0);
    double u = deha.tileUtilization(321, 1);
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
}

TEST(Deha, SwitchAccounting)
{
    Deha deha(testing::tinyChip(8));
    // Chip fully compute; plan wants 3 memory arrays.
    SwitchDelta d = deha.switchesBetween(8, ModePlan{5, 3});
    EXPECT_EQ(d.computeToMem, 3);
    EXPECT_EQ(d.memToCompute, 0);
    s64 phys = deha.applySwitches(8, d);
    EXPECT_EQ(phys, 5);

    // Now go compute-heavy again.
    d = deha.switchesBetween(phys, ModePlan{7, 1});
    EXPECT_EQ(d.memToCompute, 2);
    EXPECT_EQ(d.computeToMem, 0);
    phys = deha.applySwitches(phys, d);
    EXPECT_EQ(phys, 7);

    // A plan already satisfied costs nothing.
    d = deha.switchesBetween(phys, ModePlan{6, 1});
    EXPECT_EQ(d.memToCompute + d.computeToMem, 0);
}

TEST(Deha, SwitchLatencyIsEq1)
{
    ChipConfig c = testing::tinyChip(8);
    c.switchC2mLatency = 3;
    c.switchM2cLatency = 5;
    Deha deha(c);
    Cycles l = deha.switchLatency(SwitchDelta{2, 4});
    EXPECT_EQ(l, 2 * 5 + 4 * 3);
}

TEST(Deha, DescribeListsFig8Fields)
{
    Deha deha(ChipConfig::dynaplasia());
    std::string text = deha.describe();
    EXPECT_NE(text.find("#_switch_array"), std::string::npos);
    EXPECT_NE(text.find("array_size"), std::string::npos);
    EXPECT_NE(text.find("L_c2m"), std::string::npos);
    EXPECT_NE(text.find("Methd"), std::string::npos);
}

/** Property: switching never over- or under-shoots the plan. */
class SwitchProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(SwitchProperty, PhysicalStateAlwaysCoversPlan)
{
    Rng rng(static_cast<u64>(GetParam()));
    Deha deha(testing::tinyChip(12));
    s64 phys = 12;
    for (int step = 0; step < 50; ++step) {
        s64 c = rng.nextInt(0, 12);
        s64 m = rng.nextInt(0, 12 - c);
        ModePlan plan{c, m};
        SwitchDelta d = deha.switchesBetween(phys, plan);
        phys = deha.applySwitches(phys, d);
        EXPECT_GE(phys, plan.computeArrays);
        EXPECT_GE(12 - phys, plan.memoryArrays);
        EXPECT_FALSE(d.memToCompute > 0 && d.computeToMem > 0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchProperty, ::testing::Range(0, 10));

} // namespace
} // namespace cmswitch
