/** @file Unit tests for the support library. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include <unordered_map>

#include "support/common.hpp"
#include "support/flat_map.hpp"
#include "support/random.hpp"
#include "support/serialize.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

TEST(CeilDiv, ExactAndRounding)
{
    EXPECT_EQ(ceilDiv(10, 5), 2);
    EXPECT_EQ(ceilDiv(11, 5), 3);
    EXPECT_EQ(ceilDiv(1, 5), 1);
    EXPECT_EQ(ceilDiv(0, 5), 0);
    EXPECT_EQ(ceilDiv(5, 1), 5);
}

TEST(Strings, SplitKeepsEmptyFields)
{
    auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingle)
{
    auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t\n "), "");
    EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(startsWith("in=3", "in="));
    EXPECT_FALSE(startsWith("in", "in="));
    EXPECT_TRUE(startsWith("abc", ""));
}

TEST(Strings, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Strings, FormatDouble)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(Strings, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(1024.0), "1.00 KiB");
    EXPECT_EQ(formatBytes(9.6 * 1024 * 1024), "9.60 MiB");
}

TEST(Table, RendersHeaderRule)
{
    Table t("demo");
    t.addRow({"model", "speedup"});
    t.addRow("vgg16", {1.32}, 2);
    std::string text = t.render();
    EXPECT_NE(text.find("== demo =="), std::string::npos);
    EXPECT_NE(text.find("model"), std::string::npos);
    EXPECT_NE(text.find("1.32"), std::string::npos);
    EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, ColumnsAligned)
{
    Table t;
    t.addRow({"a", "bb"});
    t.addRow({"ccc", "d"});
    std::string text = t.render();
    // "a" padded to width 3 + 2 spaces before "bb".
    EXPECT_NE(text.find("a    bb"), std::string::npos);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextInt(0, 1000), b.nextInt(0, 1000));
}

TEST(Rng, WorkloadSequencesDeterministicAcrossInstances)
{
    // Property/fuzz suites draw whole workloads, not single numbers;
    // pin that the composite draw is reproducible too: same seed means
    // two independent Rng instances yield identical workload streams.
    ChipConfig chip = testing::tinyChip(8);
    Rng a(42), b(42);
    for (int i = 0; i < 50; ++i) {
        OpWorkload wa = testing::randomWorkload(a, chip);
        OpWorkload wb = testing::randomWorkload(b, chip);
        EXPECT_EQ(wa.weightTiles, wb.weightTiles);
        EXPECT_EQ(wa.utilization, wb.utilization);
        EXPECT_EQ(wa.movingRows, wb.movingRows);
        EXPECT_EQ(wa.weightBytes, wb.weightBytes);
        EXPECT_EQ(wa.macs, wb.macs);
        EXPECT_EQ(wa.inputBytes, wb.inputBytes);
        EXPECT_EQ(wa.outputBytes, wb.outputBytes);
        EXPECT_EQ(wa.vectorElems, wb.vectorElems);
        EXPECT_EQ(wa.dynamicWeights, wb.dynamicWeights);
        EXPECT_EQ(wa.aiMacsPerByte, wb.aiMacsPerByte);
    }
}

TEST(BinarySerialize, ScalarsRoundTripExactly)
{
    BinaryWriter w;
    w.writeU8(0xab);
    w.writeU32(0xdeadbeef);
    w.writeU64(0x0123456789abcdefull);
    w.writeS64(-42);
    w.writeS64(std::numeric_limits<s64>::min());
    w.writeF64(0.1);              // not representable exactly in decimal
    w.writeF64(-0.0);             // sign of zero must survive
    w.writeF64(1e308);
    w.writeBool(true);
    w.writeBool(false);
    w.writeString("hello\0world"); // embedded NUL
    w.writeString("");

    BinaryReader r(w.bytes());
    EXPECT_EQ(r.readU8(), 0xab);
    EXPECT_EQ(r.readU32(), 0xdeadbeefu);
    EXPECT_EQ(r.readU64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.readS64(), -42);
    EXPECT_EQ(r.readS64(), std::numeric_limits<s64>::min());
    EXPECT_EQ(r.readF64(), 0.1);
    double negzero = r.readF64();
    EXPECT_EQ(negzero, 0.0);
    EXPECT_TRUE(std::signbit(negzero));
    EXPECT_EQ(r.readF64(), 1e308);
    EXPECT_TRUE(r.readBool());
    EXPECT_FALSE(r.readBool());
    EXPECT_EQ(r.readString(), std::string("hello")); // literal stops at NUL
    EXPECT_EQ(r.readString(), "");
    EXPECT_TRUE(r.atEnd());
    EXPECT_NO_THROW(r.expectEnd());
}

TEST(BinarySerialize, StringsWithEmbeddedNulRoundTrip)
{
    std::string payload("a\0b\0c", 5);
    BinaryWriter w;
    w.writeString(payload);
    BinaryReader r(w.bytes());
    EXPECT_EQ(r.readString(), payload);
}

TEST(BinarySerialize, FixedWidthLittleEndianLayout)
{
    BinaryWriter w;
    w.writeU32(0x04030201u);
    ASSERT_EQ(w.size(), 4);
    EXPECT_EQ(w.bytes(), std::string("\x01\x02\x03\x04", 4));
}

TEST(BinarySerialize, TruncatedReadsThrow)
{
    BinaryWriter w;
    w.writeU64(7);
    std::string bytes = w.bytes().substr(0, 5);
    BinaryReader r(bytes);
    EXPECT_THROW(r.readU64(), SerializeError);

    BinaryReader empty(std::string_view{});
    EXPECT_THROW(empty.readU8(), SerializeError);
}

TEST(BinarySerialize, HostileStringLengthThrowsInsteadOfAllocating)
{
    // A string length prefix far beyond the buffer must throw, not
    // attempt a ~2^64 byte allocation.
    BinaryWriter w;
    w.writeU64(static_cast<u64>(-1));
    w.writeRaw("abc");
    BinaryReader r(w.bytes());
    EXPECT_THROW(r.readString(), SerializeError);
}

TEST(BinarySerialize, BadBoolByteThrows)
{
    BinaryWriter w;
    w.writeU8(2);
    BinaryReader r(w.bytes());
    EXPECT_THROW(r.readBool(), SerializeError);
}

TEST(BinarySerialize, ReadBoundedRejectsOutOfRange)
{
    BinaryWriter w;
    w.writeS64(100);
    w.writeS64(-1);
    w.writeS64(5);
    BinaryReader r(w.bytes());
    EXPECT_THROW(r.readBounded(99, "tag"), SerializeError);
    EXPECT_THROW(r.readBounded(10, "tag"), SerializeError);
    EXPECT_EQ(r.readBounded(5, "tag"), 5);
}

TEST(BinarySerialize, TrailingBytesDetected)
{
    BinaryWriter w;
    w.writeU8(1);
    w.writeU8(2);
    BinaryReader r(w.bytes());
    r.readU8();
    EXPECT_FALSE(r.atEnd());
    EXPECT_THROW(r.expectEnd(), SerializeError);
    EXPECT_EQ(r.remaining(), 1u);
}

TEST(Rng, WorkloadSequencesDivergeAcrossSeeds)
{
    ChipConfig chip = testing::tinyChip(8);
    Rng a(42), b(43);
    bool any_difference = false;
    for (int i = 0; i < 50 && !any_difference; ++i) {
        OpWorkload wa = testing::randomWorkload(a, chip);
        OpWorkload wb = testing::randomWorkload(b, chip);
        any_difference = wa.weightTiles != wb.weightTiles
                      || wa.inputBytes != wb.inputBytes
                      || wa.movingRows != wb.movingRows;
    }
    EXPECT_TRUE(any_difference) << "seeds 42 and 43 produced identical "
                                   "50-workload streams";
}

TEST(FlatRangeMap, FindOnEmptyAndAfterClear)
{
    FlatRangeMap<int> map;
    EXPECT_EQ(map.find(0), nullptr);
    EXPECT_EQ(map.find(12345), nullptr);
    map.insert(7, 70);
    ASSERT_NE(map.find(7), nullptr);
    map.clear();
    EXPECT_EQ(map.find(7), nullptr);
    EXPECT_TRUE(map.empty());
}

TEST(FlatRangeMap, MatchesUnorderedMapUnderRandomLoad)
{
    Rng rng(99);
    FlatRangeMap<s64> map;
    std::unordered_map<s64, s64> reference;
    for (int i = 0; i < 5000; ++i) {
        s64 key = rng.nextInt(0, 20000);
        if (reference.count(key)) {
            s64 *found = map.find(key);
            ASSERT_NE(found, nullptr);
            EXPECT_EQ(*found, reference[key]);
        } else {
            s64 value = rng.nextInt(0, 1 << 30);
            reference[key] = value;
            map.insert(key, value);
        }
    }
    EXPECT_EQ(map.size(), reference.size());
    for (const auto &[key, value] : reference) {
        s64 *found = map.find(key);
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, value);
    }
    // Probes for absent keys (including ones past every insert).
    for (int i = 0; i < 1000; ++i) {
        s64 key = rng.nextInt(20001, 40000);
        EXPECT_EQ(map.find(key), nullptr);
    }
}

TEST(FlatRangeMap, ReferencesSurviveGrowth)
{
    FlatRangeMap<s64> map;
    s64 &first = map.insert(0, 1000);
    std::vector<s64 *> pointers;
    for (s64 k = 1; k <= 512; ++k)
        pointers.push_back(&map.insert(k, 1000 + k));
    EXPECT_EQ(first, 1000);
    for (s64 k = 1; k <= 512; ++k)
        EXPECT_EQ(*pointers[static_cast<std::size_t>(k - 1)], 1000 + k);
    EXPECT_EQ(map.find(0), &first);
}

TEST(Mix64, DistinctOnSequentialKeys)
{
    // Not a statistical test — just pins that the mixer is not the
    // identity and spreads dense range keys across the low bits the
    // flat map masks with.
    std::unordered_map<u64, u64> seen;
    for (u64 k = 0; k < 4096; ++k) {
        u64 h = mix64(k);
        EXPECT_NE(h, k);
        seen[h] = k;
    }
    EXPECT_EQ(seen.size(), 4096u);
}

TEST(Rng, RangesRespected)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        s64 v = rng.nextInt(-3, 5);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 5);
        double d = rng.nextDouble(0.25, 0.75);
        EXPECT_GE(d, 0.25);
        EXPECT_LT(d, 0.75);
    }
}

} // namespace
} // namespace cmswitch
