/**
 * @file
 * Multi-thread determinism of the compilation service: an N-thread
 * batch over the scenario matrix must produce byte-identical JSON
 * reports to the serial run, and repeated request keys must always hit
 * the plan cache. This is the in-process version of the `cmswitchc
 * batch` acceptance gate (tests/batch_smoke.cmake drives the CLI).
 */

#include <gtest/gtest.h>

#include <future>
#include <map>
#include <string>
#include <vector>

#include "service/json_report.hpp"
#include "scenario_util.hpp"

namespace cmswitch {
namespace {

using ::cmswitch::testing::scenarioChip;
using ::cmswitch::testing::scenarioChipNames;
using ::cmswitch::testing::scenarioCompilerNames;
using ::cmswitch::testing::scenarioWorkload;
using ::cmswitch::testing::scenarioWorkloadNames;

std::vector<CompileRequest>
matrixRequests()
{
    std::vector<CompileRequest> requests;
    for (const std::string &chip : scenarioChipNames()) {
        for (const std::string &workload : scenarioWorkloadNames()) {
            for (const std::string &compiler : scenarioCompilerNames()) {
                CompileRequest r;
                r.chip = scenarioChip(chip);
                r.workload = scenarioWorkload(workload);
                r.compilerId = compiler;
                requests.push_back(std::move(r));
            }
        }
    }
    return requests;
}

/** Run @p requests through a fresh service; return per-job reports. */
std::vector<std::string>
runBatch(const std::vector<CompileRequest> &requests, s64 threads)
{
    CompileService service({.threads = threads, .cacheCapacity = 256, .cacheDir = ""});
    std::vector<std::future<ArtifactPtr>> futures;
    futures.reserve(requests.size());
    for (const CompileRequest &r : requests)
        futures.push_back(service.submit(r));
    std::vector<std::string> reports;
    reports.reserve(requests.size());
    for (auto &f : futures) {
        ArtifactPtr artifact = f.get();
        EXPECT_TRUE(artifact->validation.ok())
            << artifact->validation.summary();
        reports.push_back(renderCompileReport(*artifact));
    }
    return reports;
}

TEST(ServiceDeterminism, FourThreadMatrixMatchesSerialByteForByte)
{
    std::vector<CompileRequest> requests = matrixRequests();
    // Duplicate a slice of the matrix so the cache sees repeats under
    // contention (same-key requests racing across workers).
    for (std::size_t k = 0; k < 8; ++k)
        requests.push_back(requests[k * 5 % requests.size()]);

    std::vector<std::string> serial = runBatch(requests, 1);
    std::vector<std::string> parallel = runBatch(requests, 4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t k = 0; k < serial.size(); ++k)
        EXPECT_EQ(serial[k], parallel[k]) << "job " << k
                                          << " diverged across thread counts";
}

TEST(ServiceDeterminism, RepeatedKeysAlwaysHitTheCache)
{
    std::vector<CompileRequest> requests = matrixRequests();
    std::vector<CompileRequest> doubled = requests;
    doubled.insert(doubled.end(), requests.begin(), requests.end());

    CompileService service({.threads = 4, .cacheCapacity = 256, .cacheDir = ""});
    std::vector<std::future<ArtifactPtr>> futures;
    for (const CompileRequest &r : doubled)
        futures.push_back(service.submit(r));
    std::map<std::string, ArtifactPtr> byKey;
    for (std::size_t k = 0; k < futures.size(); ++k) {
        ArtifactPtr artifact = futures[k].get();
        auto [it, inserted] = byKey.emplace(artifact->key, artifact);
        if (!inserted) {
            EXPECT_EQ(it->second.get(), artifact.get())
                << "repeated key must share one artifact";
        }
    }

    CompileServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests, static_cast<s64>(doubled.size()));
    EXPECT_EQ(stats.cache.misses, static_cast<s64>(requests.size()))
        << "every unique key compiles exactly once";
    EXPECT_EQ(stats.cache.hits, static_cast<s64>(requests.size()))
        << "every repeated key reports a cache hit";
}

} // namespace
} // namespace cmswitch
