/** @file Tests for the energy-model extension. */

#include <gtest/gtest.h>

#include "baselines/baseline.hpp"
#include "compiler/cmswitch_compiler.hpp"
#include "models/model_zoo.hpp"
#include "sim/energy.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

TEST(Energy, BreakdownComponentsSumToTotal)
{
    ChipConfig chip = testing::tinyChip(8);
    CmSwitchCompiler compiler(chip);
    Graph g = buildTinyMlp(2, 32, 64, 16);
    CompileResult r = compiler.compile(g);

    Deha deha(chip);
    EnergyModel model(deha, EnergyParams::dynaplasia());
    EnergyReport e = model.price(r.program, r.totalCycles());
    EXPECT_GT(e.totalPj(), 0.0);
    EXPECT_NEAR(e.totalPj(),
                e.computePj + e.memoryPj + e.rewritePj + e.dmaPj + e.switchPj
                    + e.fuPj + e.staticPj,
                1e-9);
    EXPECT_GT(e.computePj, 0.0); // MACs happened
    EXPECT_GT(e.rewritePj, 0.0); // weights were programmed
    EXPECT_DOUBLE_EQ(e.totalUj(), e.totalPj() * 1e-6);
}

TEST(Energy, ComputeEnergyTracksMacs)
{
    ChipConfig chip = testing::tinyChip(8);
    Deha deha(chip);
    EnergyModel model(deha, EnergyParams::dynaplasia());
    CmSwitchCompiler compiler(chip);

    CompileResult small = compiler.compile(buildTinyMlp(1, 32, 32, 32));
    CompileResult big = compiler.compile(buildTinyMlp(4, 32, 32, 32));
    EnergyReport e_small = model.price(small.program, small.totalCycles());
    EnergyReport e_big = model.price(big.program, big.totalCycles());
    // 4x the batch => 4x the MAC energy, same weight rewrite energy.
    EXPECT_NEAR(e_big.computePj, 4.0 * e_small.computePj, 1e-6);
    EXPECT_NEAR(e_big.rewritePj, e_small.rewritePj, 1e-6);
}

TEST(Energy, DecodeEnergyNearParity)
{
    // Decode energy is dominated by weight DMA, which every compiler
    // pays identically; CMSwitch's latency win must not come from a
    // hidden energy regression (within a small tolerance of parity).
    ChipConfig chip = ChipConfig::dynaplasia();
    TransformerConfig cfg = TransformerConfig::opt6_7b();
    cfg.layers = 1;
    Graph step = buildTransformerDecodeStep(cfg, 1, 256);

    Deha deha(chip);
    EnergyModel model(deha, EnergyParams::dynaplasia());

    auto ours = makeCmSwitchCompiler(chip);
    auto mlc = makeCimMlcCompiler(chip);
    CompileResult a = ours->compile(step);
    CompileResult b = mlc->compile(step);
    EnergyReport ea = model.price(a.program, a.totalCycles());
    EnergyReport eb = model.price(b.program, b.totalCycles());
    EXPECT_LT(ea.totalPj(), 1.05 * eb.totalPj());
}

TEST(Energy, MemoryModeCutsSpillEnergyOnVgg)
{
    // The paper's energy-efficiency claim (Sec. 3.2): keeping
    // activations in memory-mode arrays replaces off-chip spills with
    // on-chip hand-over. VGG's large feature maps make this visible.
    ChipConfig chip = ChipConfig::dynaplasia();
    Graph g = buildVgg16(1);
    Deha deha(chip);
    EnergyModel model(deha, EnergyParams::dynaplasia());

    auto ours = makeCmSwitchCompiler(chip);
    auto mlc = makeCimMlcCompiler(chip);
    CompileResult a = ours->compile(g);
    CompileResult b = mlc->compile(g);
    EnergyReport ea = model.price(a.program, a.totalCycles());
    EnergyReport eb = model.price(b.program, b.totalCycles());
    EXPECT_LT(ea.totalPj(), eb.totalPj());
}

TEST(Energy, PrimeWritesCostMore)
{
    ChipConfig chip = testing::tinyChip(8);
    CmSwitchCompiler compiler(chip);
    Graph g = buildTinyMlp(2, 32, 64, 16);
    CompileResult r = compiler.compile(g);

    Deha deha(chip);
    EnergyReport dyna = EnergyModel(deha, EnergyParams::dynaplasia())
                            .price(r.program, r.totalCycles());
    EnergyReport prime = EnergyModel(deha, EnergyParams::prime())
                             .price(r.program, r.totalCycles());
    EXPECT_GT(prime.rewritePj, 10.0 * dyna.rewritePj);
}

TEST(Energy, StaticEnergyScalesWithRuntime)
{
    ChipConfig chip = testing::tinyChip(8);
    CmSwitchCompiler compiler(chip);
    Graph g = buildTinyMlp(1, 16, 16, 16);
    CompileResult r = compiler.compile(g);
    Deha deha(chip);
    EnergyModel model(deha, EnergyParams::dynaplasia());
    EnergyReport e1 = model.price(r.program, 1000);
    EnergyReport e2 = model.price(r.program, 2000);
    EXPECT_NEAR(e2.staticPj, 2.0 * e1.staticPj, 1e-9);
    EXPECT_NEAR(e2.computePj, e1.computePj, 1e-9);
}

TEST(Energy, DynamicWeightsPayArrayWrites)
{
    ChipConfig chip = ChipConfig::dynaplasia();
    Deha deha(chip);
    EnergyModel model(deha, EnergyParams::dynaplasia());
    CmSwitchCompiler compiler(chip);
    TransformerConfig cfg = TransformerConfig::bertBase();
    cfg.layers = 1;
    CompileResult r = compiler.compile(buildTransformerPrefill(cfg, 1, 32));
    EnergyReport e = model.price(r.program, r.totalCycles());
    // Attention QK^T/SV stationary operands are written at runtime.
    EXPECT_GT(e.rewritePj, 0.0);
    EXPECT_GT(e.fuPj, 0.0); // softmax / layernorm happened
}

TEST(Energy, ForChipKeysOnTechnologyNotName)
{
    // A user chip file describing a ReRAM part must get ReRAM pricing
    // even though its display name is not "prime" (ROADMAP bug).
    ChipConfig user = testing::tinyChip(8);
    user.name = "my-reram-part";
    user.technology = CellTechnology::kReram;
    EXPECT_DOUBLE_EQ(EnergyParams::forChip(user).arrayWritePjPerByte,
                     EnergyParams::prime().arrayWritePjPerByte);

    // And renaming a chip "prime" does not buy ReRAM pricing.
    ChipConfig edram = testing::tinyChip(8);
    edram.name = "prime";
    EXPECT_DOUBLE_EQ(EnergyParams::forChip(edram).arrayWritePjPerByte,
                     EnergyParams::dynaplasia().arrayWritePjPerByte);

    EXPECT_DOUBLE_EQ(
        EnergyParams::forChip(ChipConfig::prime()).arrayWritePjPerByte,
        EnergyParams::prime().arrayWritePjPerByte);
}

} // namespace
} // namespace cmswitch
