/**
 * @file
 * Tests for the serve daemon's building blocks: the ServeQueue
 * admission gate (priority-then-FIFO rejection order, deadline expiry
 * while queued — both driven by a fake clock, fully deterministic),
 * the strict wire-protocol parser/resolver, and the ServeEngine's
 * status-v2 report under a fixed hold/release request script
 * (cumulative quantiles on demand, interval deltas only on periodic
 * lines). The two-process socket path is covered by serve_smoke (e2e).
 */

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "service/serve/serve_engine.hpp"
#include "service/serve/serve_protocol.hpp"
#include "service/serve/serve_queue.hpp"
#include "support/json_parse.hpp"

namespace cmswitch {
namespace {

using Kind = ServeQueue::Admission::Kind;

TEST(ServeQueue, RejectionOrderIsPriorityThenFifo)
{
    ServeQueue queue(2);
    EXPECT_EQ(queue.admit(1, 5, false, 0.0).kind, Kind::kAdmitted);
    EXPECT_EQ(queue.admit(2, 5, false, 0.0).kind, Kind::kAdmitted);

    // Equal priority never displaces a waiter: FIFO within the band.
    EXPECT_EQ(queue.admit(3, 5, false, 0.0).kind, Kind::kShedSelf);
    // Lower priority sheds itself.
    EXPECT_EQ(queue.admit(4, 1, false, 0.0).kind, Kind::kShedSelf);
    EXPECT_EQ(queue.size(), 2);

    // Strictly higher priority evicts the weakest waiter; among the
    // equal-priority band the *newest* loses (seq 2, not seq 1).
    ServeQueue::Admission eviction = queue.admit(5, 9, false, 0.0);
    EXPECT_EQ(eviction.kind, Kind::kShedVictim);
    EXPECT_EQ(eviction.victim, 2u);
    EXPECT_EQ(queue.size(), 2);
}

TEST(ServeQueue, VictimComesFromTheLowestPriorityBand)
{
    ServeQueue queue(3);
    queue.admit(1, 5, false, 0.0);
    queue.admit(2, 1, false, 0.0);
    queue.admit(3, 5, false, 0.0);
    ServeQueue::Admission eviction = queue.admit(4, 9, false, 0.0);
    EXPECT_EQ(eviction.kind, Kind::kShedVictim);
    EXPECT_EQ(eviction.victim, 2u);
}

TEST(ServeQueue, PopOrdersByPriorityDeadlineThenFifo)
{
    ServeQueue queue(8);
    queue.admit(1, 0, false, 0.0);
    queue.admit(2, 5, false, 0.0);
    queue.admit(3, 5, true, 9.0);
    queue.admit(4, 5, true, 4.0);
    queue.admit(5, 9, false, 0.0);
    queue.admit(6, 0, false, 0.0);

    // Priority first; within a band a deadline outranks none and the
    // earlier deadline wins; all else FIFO by admission sequence.
    std::vector<u64> expired;
    std::vector<u64> order;
    u64 seq = 0;
    while (queue.pop(0.0, &seq, &expired))
        order.push_back(seq);
    EXPECT_TRUE(expired.empty());
    EXPECT_EQ(order, (std::vector<u64>{5, 4, 3, 2, 1, 6}));
}

TEST(ServeQueue, PopShedsExpiredTicketsBeforeSelecting)
{
    ServeQueue queue(4);
    // Seq 1 would be popped first (highest priority) — but its
    // deadline has passed, so it must be shed, never dispatched.
    queue.admit(1, 9, true, 1.0);
    queue.admit(2, 0, false, 0.0);

    std::vector<u64> expired;
    u64 seq = 0;
    ASSERT_TRUE(queue.pop(2.0, &seq, &expired));
    EXPECT_EQ(expired, std::vector<u64>{1});
    EXPECT_EQ(seq, 2u);

    // A deadline exactly at `now` counts as expired, and a sweep that
    // empties the queue reports so.
    queue.admit(3, 5, true, 3.0);
    expired.clear();
    EXPECT_FALSE(queue.pop(3.0, &seq, &expired));
    EXPECT_EQ(expired, std::vector<u64>{3});
    EXPECT_TRUE(queue.empty());
}

TEST(ServeProtocol, ParseIsStrict)
{
    ServeRequest request;
    std::string error;
    EXPECT_FALSE(parseServeRequest("not json", &request, &error));
    EXPECT_FALSE(parseServeRequest("[1,2]", &request, &error));
    EXPECT_FALSE(parseServeRequest(R"({"id":"x"})", &request, &error));
    EXPECT_FALSE(
        parseServeRequest(R"({"op":"fly","id":"x"})", &request, &error));
    // Compile needs a non-empty id and a model.
    EXPECT_FALSE(parseServeRequest(R"({"op":"compile","model":"vgg16"})",
                                   &request, &error));
    EXPECT_FALSE(parseServeRequest(R"({"op":"compile","id":"a"})",
                                   &request, &error));
    // Unknown keys are errors, not silently dropped typos.
    EXPECT_FALSE(parseServeRequest(
        R"({"op":"compile","id":"a","model":"vgg16","prio":3})", &request,
        &error));
    EXPECT_NE(error.find("prio"), std::string::npos);
    // Compile-only keys are rejected on other ops.
    EXPECT_FALSE(parseServeRequest(
        R"({"op":"status","id":"s","model":"vgg16"})", &request, &error));
    // Wrong types and out-of-range values are errors.
    EXPECT_FALSE(parseServeRequest(
        R"({"op":"compile","id":"a","model":"vgg16","batch":"two"})",
        &request, &error));
    EXPECT_FALSE(parseServeRequest(
        R"({"op":"compile","id":"a","model":"vgg16","deadline_ms":-1})",
        &request, &error));
}

TEST(ServeProtocol, ParseReadsEveryCompileField)
{
    ServeRequest request;
    std::string error;
    ASSERT_TRUE(parseServeRequest(
        R"({"op":"compile","id":"r1","model":"bert-base","chip":"prime",)"
        R"("compiler":"occ","batch":2,"seq":128,"layers":3,)"
        R"("optimize":true,"priority":-7,"deadline_ms":250})",
        &request, &error))
        << error;
    EXPECT_EQ(request.op, ServeRequest::Op::kCompile);
    EXPECT_EQ(request.id, "r1");
    EXPECT_EQ(request.model, "bert-base");
    EXPECT_EQ(request.chip, "prime");
    EXPECT_EQ(request.compiler, "occ");
    EXPECT_EQ(request.batch, 2);
    EXPECT_EQ(request.seq, 128);
    EXPECT_EQ(request.layers, 3);
    EXPECT_TRUE(request.optimize);
    EXPECT_EQ(request.priority, -7);
    EXPECT_TRUE(request.hasDeadline);
    EXPECT_EQ(request.deadlineMs, 250);

    // Deadline absent != deadline 0: only presence arms the expiry.
    ASSERT_TRUE(parseServeRequest(
        R"({"op":"compile","id":"r2","model":"tiny-mlp"})", &request,
        &error))
        << error;
    EXPECT_FALSE(request.hasDeadline);
    EXPECT_EQ(request.priority, 0);
}

TEST(ServeProtocol, ResolveFailsOnUnknownNamesWithoutExiting)
{
    // The CLI resolvers fatal() on unknown names; the serve resolver
    // must instead fail with a message — a daemon cannot exit because
    // one client sent a typo.
    ServeRequest request;
    request.id = "x";
    request.model = "no-such-model";
    CompileRequest resolved;
    std::string error;
    EXPECT_FALSE(resolveServeRequest(request, &resolved, &error));
    EXPECT_NE(error.find("no-such-model"), std::string::npos);

    request.model = "tiny-mlp";
    request.chip = "no-such-chip";
    EXPECT_FALSE(resolveServeRequest(request, &resolved, &error));

    request.chip = "dynaplasia";
    request.compiler = "no-such-compiler";
    EXPECT_FALSE(resolveServeRequest(request, &resolved, &error));

    // decode/layers only make sense on transformers.
    request.compiler = "cmswitch";
    request.model = "vgg16";
    request.decodeKv = 4;
    EXPECT_FALSE(resolveServeRequest(request, &resolved, &error));

    request.decodeKv = 0;
    EXPECT_TRUE(resolveServeRequest(request, &resolved, &error)) << error;
    EXPECT_EQ(resolved.compilerId, "cmswitch");
}

/** Collects response lines from an engine (sink runs on worker and
 *  session threads). */
struct ResponseLog
{
    std::mutex mutex;
    std::vector<std::string> lines;

    ServeEngine::LineFn sink()
    {
        return [this](const std::string &line) {
            std::lock_guard<std::mutex> lock(mutex);
            lines.push_back(line);
        };
    }

    /** The one response whose "id" field equals @p id. */
    JsonValue forId(const std::string &id)
    {
        std::lock_guard<std::mutex> lock(mutex);
        JsonValue match;
        s64 found = 0;
        for (const std::string &line : lines) {
            JsonValue doc;
            std::string error;
            EXPECT_TRUE(parseJson(line, &doc, &error)) << line;
            const JsonValue *docId = doc.find("id");
            if (docId && docId->stringValue == id) {
                match = doc;
                ++found;
            }
        }
        EXPECT_EQ(found, 1) << "responses with id '" << id << "'";
        return match;
    }
};

s64
intField(const JsonValue &doc, std::initializer_list<const char *> path)
{
    const JsonValue *value = &doc;
    for (const char *key : path) {
        value = value->find(key);
        if (!value) {
            ADD_FAILURE() << "missing key '" << key << "'";
            return -1;
        }
    }
    EXPECT_TRUE(value->isIntegral);
    return value->intValue;
}

/**
 * The pinned serve scenario (mirrored by serve_smoke against the real
 * binary): max_inflight 1, max_queue 2, dispatch held while five
 * compile requests arrive —
 *   a  admitted;
 *   b  duplicate of a, coalesces as a rider (no queue slot);
 *   e  higher priority with deadline_ms 0, admitted (queue now full);
 *   d  low priority, queue full, shed at admission;
 * then release: e expires at pop (shed, never compiled), a compiles
 * cold with b riding, and a later identical f hits the memory cache.
 * Every counter in the status-v2 report is pinned; run twice to show
 * the report is deterministic under a fixed script.
 */
TEST(ServeEngine, StatusReportIsDeterministicUnderFixedScript)
{
    for (int run = 0; run < 2; ++run) {
        ResponseLog log;
        ServeEngineOptions options;
        options.maxInflight = 1;
        options.maxQueue = 2;
        ServeEngine engine(options, log.sink());

        auto line = [&](const std::string &text) {
            EXPECT_TRUE(engine.handleLine(text));
        };
        line(R"({"op":"hold","id":"h"})");
        line(R"({"op":"compile","id":"a","model":"tiny-mlp","priority":5})");
        line(R"({"op":"compile","id":"b","model":"tiny-mlp","priority":5})");
        line(R"({"op":"compile","id":"e","model":"tiny-mlp","chip":"prime",)"
             R"("priority":9,"deadline_ms":0})");
        line(R"({"op":"compile","id":"d","model":"tiny-mlp",)"
             R"("compiler":"occ","priority":1})");
        line(R"({"op":"release","id":"r"})");
        line(R"({"op":"drain","id":"dr"})");
        line(R"({"op":"compile","id":"f","model":"tiny-mlp","priority":5})");
        line(R"({"op":"drain","id":"dr2"})");

        // Per-request outcomes.
        JsonValue a = log.forId("a");
        EXPECT_EQ(a.find("cache")->stringValue, "cold");
        EXPECT_FALSE(a.find("coalesced")->boolValue);
        JsonValue b = log.forId("b");
        EXPECT_EQ(b.find("status")->stringValue, "ok");
        EXPECT_TRUE(b.find("coalesced")->boolValue);
        EXPECT_EQ(b.find("key")->stringValue, a.find("key")->stringValue);
        JsonValue d = log.forId("d");
        EXPECT_EQ(d.find("status")->stringValue, "shed");
        EXPECT_EQ(d.find("reason")->stringValue, "admission");
        EXPECT_EQ(intField(d, {"queue_depth"}), 2);
        JsonValue e = log.forId("e");
        EXPECT_EQ(e.find("status")->stringValue, "shed");
        EXPECT_EQ(e.find("reason")->stringValue, "deadline");
        JsonValue f = log.forId("f");
        EXPECT_EQ(f.find("cache")->stringValue, "memory");

        // The status-v2 report, every counter pinned. On-demand status
        // is a pure read: cumulative only, no interval block.
        JsonValue status;
        std::string error;
        ASSERT_TRUE(parseJson(engine.statusJson(), &status, &error))
            << error;
        EXPECT_EQ(status.find("schema")->stringValue,
                  "cmswitch-serve-status-v2");
        EXPECT_EQ(status.find("interval"), nullptr);
        EXPECT_EQ(intField(status, {"requests", "received"}), 5);
        EXPECT_EQ(intField(status, {"requests", "admitted"}), 3);
        EXPECT_EQ(intField(status, {"requests", "coalesced"}), 1);
        EXPECT_EQ(intField(status, {"requests", "shed_admission"}), 1);
        EXPECT_EQ(intField(status, {"requests", "shed_deadline"}), 1);
        EXPECT_EQ(intField(status, {"requests", "errors"}), 0);
        EXPECT_EQ(intField(status, {"requests", "completed"}), 3);
        EXPECT_EQ(intField(status, {"queue", "depth"}), 0);
        EXPECT_EQ(intField(status, {"queue", "inflight"}), 0);
        EXPECT_EQ(intField(status, {"cache", "memory"}), 1);
        EXPECT_EQ(intField(status, {"cache", "disk"}), 0);
        EXPECT_EQ(intField(status, {"cache", "neighbor"}), 0);
        EXPECT_EQ(intField(status, {"cache", "cold"}), 1);
        EXPECT_EQ(intField(status, {"plan_cache", "hits"}), 1);
        EXPECT_EQ(intField(status, {"plan_cache", "misses"}), 1);
        // Two compiles ran (a+b share one, f the other): the latency
        // estimators saw exactly two samples each.
        EXPECT_EQ(intField(status, {"latency", "execute_seconds",
                                    "count"}), 2);
        EXPECT_EQ(intField(status, {"latency", "queue_wait_seconds",
                                    "count"}), 2);
    }
}

/**
 * --status-every periodic lines carry true interval deltas: with
 * statusEvery 1, each line's "interval" block counts only the groups
 * that completed since the previous line, its histograms hold only the
 * interval's samples, and the deltas sum back to the cumulative
 * section that keeps counting from engine start. "drain" guarantees
 * any due periodic line has been written, so the script is race-free.
 */
TEST(ServeEngine, PeriodicStatusCarriesIntervalDeltas)
{
    ResponseLog log;
    ResponseLog periodic;
    ServeEngineOptions options;
    options.maxInflight = 1;
    options.maxQueue = 4;
    options.statusEvery = 1;
    ServeEngine engine(options, log.sink(), periodic.sink());

    auto line = [&](const std::string &text) {
        EXPECT_TRUE(engine.handleLine(text));
    };
    // Group 1: a leads with b riding (two completed requests, one
    // latency sample). Group 2: c compiles a different plan.
    line(R"({"op":"hold","id":"h"})");
    line(R"({"op":"compile","id":"a","model":"tiny-mlp","priority":5})");
    line(R"({"op":"compile","id":"b","model":"tiny-mlp","priority":5})");
    line(R"({"op":"release","id":"r"})");
    line(R"({"op":"drain","id":"d1"})");
    line(R"({"op":"compile","id":"c","model":"tiny-mlp","chip":"prime"})");
    line(R"({"op":"drain","id":"d2"})");

    std::vector<JsonValue> docs;
    {
        std::lock_guard<std::mutex> lock(periodic.mutex);
        ASSERT_EQ(periodic.lines.size(), 2u);
        for (const std::string &text : periodic.lines) {
            JsonValue doc;
            std::string error;
            ASSERT_TRUE(parseJson(text, &doc, &error)) << error;
            docs.push_back(doc);
        }
    }

    EXPECT_EQ(intField(docs[0], {"interval", "completed"}), 2);
    EXPECT_EQ(intField(docs[0], {"requests", "completed"}), 2);
    EXPECT_EQ(intField(docs[0],
                       {"interval", "queue_wait_seconds", "count"}), 1);

    // Only c's group landed in the second interval; the cumulative
    // estimators keep both samples.
    EXPECT_EQ(intField(docs[1], {"interval", "completed"}), 1);
    EXPECT_EQ(intField(docs[1], {"requests", "completed"}), 3);
    EXPECT_EQ(intField(docs[1],
                       {"interval", "queue_wait_seconds", "count"}), 1);
    EXPECT_EQ(intField(docs[1],
                       {"latency", "queue_wait_seconds", "count"}), 2);
}

TEST(ServeEngine, DeadlineExpiredWhileQueuedIsNeverCompiled)
{
    ResponseLog log;
    ServeEngineOptions options;
    options.maxInflight = 1;
    options.maxQueue = 4;
    ServeEngine engine(options, log.sink());

    EXPECT_TRUE(engine.handleLine(R"({"op":"hold","id":"h"})"));
    EXPECT_TRUE(engine.handleLine(
        R"({"op":"compile","id":"late","model":"tiny-mlp",)"
        R"("deadline_ms":0})"));
    EXPECT_TRUE(engine.handleLine(
        R"({"op":"compile","id":"ok","model":"tiny-mlp","chip":"prime"})"));
    EXPECT_TRUE(engine.handleLine(R"({"op":"release","id":"r"})"));
    EXPECT_TRUE(engine.handleLine(R"({"op":"drain","id":"d"})"));

    EXPECT_EQ(log.forId("late").find("status")->stringValue, "shed");
    EXPECT_EQ(log.forId("late").find("reason")->stringValue, "deadline");
    EXPECT_EQ(log.forId("ok").find("status")->stringValue, "ok");

    // Exactly one compile happened — the expired request never ran.
    JsonValue status;
    std::string error;
    ASSERT_TRUE(parseJson(engine.statusJson(), &status, &error)) << error;
    EXPECT_EQ(intField(status, {"plan_cache", "misses"}), 1);
    EXPECT_EQ(intField(status, {"requests", "shed_deadline"}), 1);
    EXPECT_EQ(intField(status, {"requests", "completed"}), 1);
}

TEST(ServeEngine, BadLinesGetErrorResponsesAndTheEngineSurvives)
{
    ResponseLog log;
    ServeEngine engine(ServeEngineOptions{}, log.sink());
    EXPECT_TRUE(engine.handleLine("this is not json"));
    EXPECT_TRUE(engine.handleLine(
        R"({"op":"compile","id":"bad","model":"no-such-model"})"));
    EXPECT_EQ(log.forId("bad").find("status")->stringValue, "error");
    // The daemon still compiles after both failures.
    EXPECT_TRUE(engine.handleLine(
        R"({"op":"compile","id":"good","model":"tiny-mlp"})"));
    EXPECT_TRUE(engine.handleLine(R"({"op":"drain","id":"d"})"));
    EXPECT_EQ(log.forId("good").find("status")->stringValue, "ok");

    JsonValue status;
    std::string error;
    ASSERT_TRUE(parseJson(engine.statusJson(), &status, &error)) << error;
    EXPECT_EQ(intField(status, {"requests", "errors"}), 2);
    EXPECT_EQ(intField(status, {"requests", "completed"}), 1);
}

TEST(ServeEngine, ShutdownAcksDrainsAndEndsTheSession)
{
    ResponseLog log;
    ServeEngine engine(ServeEngineOptions{}, log.sink());
    EXPECT_TRUE(engine.handleLine(
        R"({"op":"compile","id":"c","model":"tiny-mlp"})"));
    EXPECT_FALSE(engine.handleLine(R"({"op":"shutdown","id":"x"})"));
    EXPECT_EQ(log.forId("c").find("status")->stringValue, "ok");
    EXPECT_EQ(log.forId("x").find("op")->stringValue, "shutdown");
}

} // namespace
} // namespace cmswitch
