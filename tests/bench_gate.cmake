# Compile-time perf gate: compare a fresh cmswitch-bench-v1 report
# against the checked-in baseline and fail red on regression.
#
#   cmake -DREPORT=<BENCH_compile_time.json>
#         -DBASELINE=<bench/baselines/compile_time.json>
#         [-DTOLERANCE_PERCENT=60] [-DMIN_SPEEDUP_MILLI=2000]
#         -P tests/bench_gate.cmake
#
# Checks:
#  1. Per workload, cmswitch_seconds must not exceed the baseline by
#     more than TOLERANCE_PERCENT (default +/-60%; only the slow side
#     fails — a big improvement prints a baseline-refresh nudge).
#     Workloads under the noise floor (5ms baseline) are informational.
#     The default is sized for shared/containerised dev machines,
#     where identical binaries oscillate +/-40% run-to-run as
#     neighbour load shifts; the machine-independent ratio floors
#     below are the real regression gates, the wall-time check only
#     has to catch order-of-magnitude blowups.
#  2. summary.geomean_speedup_vs_reference must stay >= MIN_SPEEDUP
#     (default 2.000, expressed in thousandths): the optimized search
#     must keep its lead over the retained pre-optimization search.
#  3. summary.geomean_search_threads_speedup (parallel plan search at
#     config.search_threads workers vs serial, generative workloads)
#     must stay >= MIN_SEARCH_SPEEDUP (default 1.800, thousandths;
#     [-DMIN_SEARCH_SPEEDUP_MILLI=1800]). Skipped when the report omits
#     the field, and informational when the producing machine has fewer
#     hardware threads than config.search_threads — a 1-core runner
#     measures parallelism overhead, not parallelism.
#  4. summary.geomean_warm_neighbor_speedup (incremental recompile from
#     a retained warm-state neighbor vs cold, generative workloads)
#     must stay >= MIN_NEIGHBOR_SPEEDUP (default 5.000, thousandths;
#     [-DMIN_NEIGHBOR_SPEEDUP_MILLI=5000]). Skipped when the report
#     omits the field. CPU-bound (no thread-count caveat): the warm
#     path skips DP/allocator work it can import, it does not add
#     parallelism.
#
# Environment overrides (useful on noisy shared CI runners):
#   CMSWITCH_BENCH_GATE_TOLERANCE_PERCENT, CMSWITCH_BENCH_GATE_MIN_SPEEDUP_MILLI,
#   CMSWITCH_BENCH_GATE_MIN_SEARCH_SPEEDUP_MILLI,
#   CMSWITCH_BENCH_GATE_MIN_NEIGHBOR_SPEEDUP_MILLI
#
# On failure the gate prints how to refresh the baseline; see
# "Compile-time benchmarking" in README.md.

cmake_minimum_required(VERSION 3.20)

if(NOT REPORT OR NOT BASELINE)
    message(FATAL_ERROR "pass -DREPORT=<report.json> -DBASELINE=<baseline.json>")
endif()

if(DEFINED ENV{CMSWITCH_BENCH_GATE_TOLERANCE_PERCENT})
    set(TOLERANCE_PERCENT $ENV{CMSWITCH_BENCH_GATE_TOLERANCE_PERCENT})
elseif(NOT DEFINED TOLERANCE_PERCENT)
    set(TOLERANCE_PERCENT 60)
endif()
if(DEFINED ENV{CMSWITCH_BENCH_GATE_MIN_SPEEDUP_MILLI})
    set(MIN_SPEEDUP_MILLI $ENV{CMSWITCH_BENCH_GATE_MIN_SPEEDUP_MILLI})
elseif(NOT DEFINED MIN_SPEEDUP_MILLI)
    set(MIN_SPEEDUP_MILLI 2000)
endif()
if(DEFINED ENV{CMSWITCH_BENCH_GATE_MIN_SEARCH_SPEEDUP_MILLI})
    set(MIN_SEARCH_SPEEDUP_MILLI $ENV{CMSWITCH_BENCH_GATE_MIN_SEARCH_SPEEDUP_MILLI})
elseif(NOT DEFINED MIN_SEARCH_SPEEDUP_MILLI)
    set(MIN_SEARCH_SPEEDUP_MILLI 1800)
endif()
if(DEFINED ENV{CMSWITCH_BENCH_GATE_MIN_NEIGHBOR_SPEEDUP_MILLI})
    set(MIN_NEIGHBOR_SPEEDUP_MILLI $ENV{CMSWITCH_BENCH_GATE_MIN_NEIGHBOR_SPEEDUP_MILLI})
elseif(NOT DEFINED MIN_NEIGHBOR_SPEEDUP_MILLI)
    set(MIN_NEIGHBOR_SPEEDUP_MILLI 5000)
endif()

# Noise floor: wall-time deltas below this baseline are informational
# only (a 1ms workload regressing 40% is scheduler jitter, not code).
set(NOISE_FLOOR_NANOS 5000000)

set(REFRESH_HINT
    "to refresh the baseline after an intentional perf change:\n\
  cmake --build build -j && ./build/bench/fig18_compile_time \
--repeats 10 --out bench/baselines/compile_time.json\n\
then commit bench/baselines/compile_time.json with the change that \
moved the numbers.")

# Parse a JSON decimal number (plain or scientific notation) into
# integer nanoseconds-scale fixed point: round(value * 10^9). CMake's
# math(EXPR) is 64-bit integer only, so all gate arithmetic happens in
# this fixed-point domain.
function(to_nanos value out_var)
    if(NOT value MATCHES "^(-?)([0-9]+)(\\.([0-9]*))?([eE]([+-]?[0-9]+))?$")
        message(FATAL_ERROR "bench_gate: unparseable number '${value}'")
    endif()
    set(sign "${CMAKE_MATCH_1}")
    set(int_part "${CMAKE_MATCH_2}")
    set(frac_part "${CMAKE_MATCH_4}")
    set(exponent 0)
    if(CMAKE_MATCH_6)
        set(exponent ${CMAKE_MATCH_6})
        math(EXPR exponent "${exponent}") # normalise "+05" -> 5
    endif()
    # digits * 10^(exponent - frac_digits + 9)
    set(digits "${int_part}${frac_part}")
    string(LENGTH "${frac_part}" frac_len)
    math(EXPR shift "${exponent} - ${frac_len} + 9")
    # Strip leading zeros so math(EXPR) never sees octal-looking input.
    # (REGEX REPLACE would re-apply "^" after each replacement, eating
    # interior zeros — measure the prefix and substring instead.)
    if(digits MATCHES "^0")
        string(REGEX MATCH "^0+" leading_zeros "${digits}")
        string(LENGTH "${leading_zeros}" lead_len)
        string(LENGTH "${digits}" total_len)
        if(lead_len EQUAL total_len)
            set(digits 0)
        else()
            string(SUBSTRING "${digits}" ${lead_len} -1 digits)
        endif()
    endif()
    set(result ${digits})
    if(shift GREATER 0)
        foreach(i RANGE 1 ${shift})
            math(EXPR result "${result} * 10")
            if(result GREATER 4611686018427387904)
                message(FATAL_ERROR "bench_gate: number too large '${value}'")
            endif()
        endforeach()
    elseif(shift LESS 0)
        math(EXPR neg_shift "0 - ${shift}")
        foreach(i RANGE 1 ${neg_shift})
            math(EXPR result "${result} / 10")
        endforeach()
    endif()
    if(sign STREQUAL "-")
        math(EXPR result "0 - ${result}")
    endif()
    set(${out_var} ${result} PARENT_SCOPE)
endfunction()

file(READ ${REPORT} report_json)
file(READ ${BASELINE} baseline_json)

foreach(doc IN ITEMS report baseline)
    string(JSON ${doc}_schema GET "${${doc}_json}" schema)
    if(NOT ${doc}_schema STREQUAL "cmswitch-bench-v1")
        message(FATAL_ERROR
                "bench_gate: ${doc} has schema '${${doc}_schema}', "
                "expected cmswitch-bench-v1")
    endif()
endforeach()

# Index the report's workloads by name.
string(JSON report_count LENGTH "${report_json}" workloads)
math(EXPR report_last "${report_count} - 1")
foreach(i RANGE ${report_last})
    string(JSON name GET "${report_json}" workloads ${i} name)
    string(JSON seconds GET "${report_json}" workloads ${i}
           metrics cmswitch_seconds)
    to_nanos(${seconds} nanos)
    set(report_nanos_${name} ${nanos})
    set(report_seconds_${name} ${seconds})
endforeach()

set(failures "")
string(JSON baseline_count LENGTH "${baseline_json}" workloads)
math(EXPR baseline_last "${baseline_count} - 1")
set(compared 0)
foreach(i RANGE ${baseline_last})
    string(JSON name GET "${baseline_json}" workloads ${i} name)
    string(JSON base_seconds GET "${baseline_json}" workloads ${i}
           metrics cmswitch_seconds)
    to_nanos(${base_seconds} base_nanos)
    if(NOT DEFINED report_nanos_${name})
        list(APPEND failures
             "workload '${name}' is in the baseline but missing from the report")
        continue()
    endif()
    set(cur_nanos ${report_nanos_${name}})
    math(EXPR allowed "${base_nanos} + ${base_nanos} * ${TOLERANCE_PERCENT} / 100")
    math(EXPR floor "${base_nanos} - ${base_nanos} * ${TOLERANCE_PERCENT} / 100")
    math(EXPR compared "${compared} + 1")
    if(base_nanos LESS ${NOISE_FLOOR_NANOS})
        message(STATUS
                "bench_gate: ${name}: ${report_seconds_${name}}s vs baseline "
                "${base_seconds}s (below noise floor, informational)")
    elseif(cur_nanos GREATER ${allowed})
        list(APPEND failures
             "workload '${name}' compile time regressed: \
${report_seconds_${name}}s vs baseline ${base_seconds}s \
(+${TOLERANCE_PERCENT}% tolerance exceeded)")
    elseif(cur_nanos LESS ${floor})
        message(STATUS
                "bench_gate: ${name}: ${report_seconds_${name}}s is >"
                "${TOLERANCE_PERCENT}% faster than baseline ${base_seconds}s"
                " — consider refreshing the baseline")
    else()
        message(STATUS
                "bench_gate: ${name}: ${report_seconds_${name}}s within "
                "${TOLERANCE_PERCENT}% of baseline ${base_seconds}s")
    endif()
endforeach()

if(compared EQUAL 0)
    list(APPEND failures "no workloads compared — empty baseline?")
endif()

# Gate 2: the optimized search must keep its geomean lead over the
# retained reference search.
string(JSON speedup GET "${report_json}" summary geomean_speedup_vs_reference)
to_nanos(${speedup} speedup_nanos)
math(EXPR speedup_milli "${speedup_nanos} / 1000000")
if(speedup_milli LESS ${MIN_SPEEDUP_MILLI})
    list(APPEND failures
         "geomean speedup over the reference search is ${speedup}x, \
below the required ${MIN_SPEEDUP_MILLI}/1000x")
else()
    message(STATUS
            "bench_gate: geomean speedup vs reference search: ${speedup}x "
            "(floor ${MIN_SPEEDUP_MILLI}/1000x)")
endif()

# Gate 3: parallel plan search must pay off. The field is absent when
# the report predates the parallel-search dimension (or a run disabled
# it) — skip, don't fail, so old baselines and partial reports still
# gate on checks 1 and 2. The floor only binds when the producing
# machine actually had at least config.search_threads hardware threads.
string(JSON search_speedup ERROR_VARIABLE search_speedup_error
       GET "${report_json}" summary geomean_search_threads_speedup)
if(search_speedup_error)
    message(STATUS
            "bench_gate: report has no geomean_search_threads_speedup — "
            "skipping the parallel-search check")
else()
    string(JSON search_threads ERROR_VARIABLE search_threads_error
           GET "${report_json}" config search_threads)
    string(JSON hw_threads ERROR_VARIABLE hw_threads_error
           GET "${report_json}" config hardware_concurrency)
    if(search_threads_error OR hw_threads_error)
        message(FATAL_ERROR
                "bench_gate: report has geomean_search_threads_speedup but "
                "no config.search_threads/hardware_concurrency to judge it")
    endif()
    to_nanos(${search_speedup} search_speedup_nanos)
    math(EXPR search_speedup_milli "${search_speedup_nanos} / 1000000")
    # hardware_concurrency 0 means "unknown" — treated as too few, since
    # an unverifiable floor would only produce unactionable failures.
    if(hw_threads LESS ${search_threads})
        message(STATUS
                "bench_gate: search-threads speedup ${search_speedup}x at "
                "${search_threads} threads on ${hw_threads} hardware "
                "thread(s) — informational only (not enough cores to "
                "enforce the ${MIN_SEARCH_SPEEDUP_MILLI}/1000x floor)")
    elseif(search_speedup_milli LESS ${MIN_SEARCH_SPEEDUP_MILLI})
        list(APPEND failures
             "geomean parallel-search speedup is ${search_speedup}x at \
${search_threads} search threads, below the required \
${MIN_SEARCH_SPEEDUP_MILLI}/1000x")
    else()
        message(STATUS
                "bench_gate: geomean search-threads speedup: "
                "${search_speedup}x at ${search_threads} threads "
                "(floor ${MIN_SEARCH_SPEEDUP_MILLI}/1000x)")
    endif()
endif()

# Gate 4: incremental recompilation from a warm-state neighbor must
# stay dramatically cheaper than a cold compile — it skips the DP scan
# and allocator searches wholesale on an exact structural match. Absent
# field (old baseline / partial report) skips the check.
string(JSON warm_speedup ERROR_VARIABLE warm_speedup_error
       GET "${report_json}" summary geomean_warm_neighbor_speedup)
if(warm_speedup_error)
    message(STATUS
            "bench_gate: report has no geomean_warm_neighbor_speedup — "
            "skipping the warm-neighbor check")
else()
    to_nanos(${warm_speedup} warm_speedup_nanos)
    math(EXPR warm_speedup_milli "${warm_speedup_nanos} / 1000000")
    if(warm_speedup_milli LESS ${MIN_NEIGHBOR_SPEEDUP_MILLI})
        list(APPEND failures
             "geomean warm-neighbor speedup is ${warm_speedup}x, below \
the required ${MIN_NEIGHBOR_SPEEDUP_MILLI}/1000x")
    else()
        message(STATUS
                "bench_gate: geomean warm-neighbor speedup: "
                "${warm_speedup}x (floor ${MIN_NEIGHBOR_SPEEDUP_MILLI}/1000x)")
    endif()
endif()

if(failures)
    string(JOIN "\n  " failure_text ${failures})
    message(FATAL_ERROR
            "bench_gate FAILED:\n  ${failure_text}\n${REFRESH_HINT}")
endif()
message(STATUS "bench_gate: PASS (${compared} workloads compared)")
