/**
 * @file
 * Unit tests for the observability subsystem (src/obs/): the
 * LogHistogram quantile estimator against exact sorted percentiles,
 * merge/reset semantics, thread-safety of concurrent recording (this
 * suite carries the tier1 label, so CI's TSan job covers it), registry
 * snapshot determinism, the install/uninstall control plane, and the
 * trace recorder's per-thread event lanes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"

namespace cmswitch {
namespace obs {
namespace {

/** The estimator's contract: nearest-rank, rank = ceil(q*n), min 1. */
double
exactQuantile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::ceil(q * n));
    if (rank < 1)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

void
expectQuantileWithinBound(const LogHistogram &h,
                          const std::vector<double> &samples, double q)
{
    double exact = exactQuantile(samples, q);
    double est = h.quantile(q);
    if (exact == 0.0) {
        EXPECT_EQ(est, 0.0) << "q=" << q;
        return;
    }
    double rel = std::abs(est - exact) / exact;
    EXPECT_LE(rel, LogHistogram::kMaxRelativeError)
        << "q=" << q << " exact=" << exact << " est=" << est;
}

std::vector<double>
recordAll(LogHistogram *h, const std::vector<double> &samples)
{
    for (double s : samples)
        h->record(s);
    return samples;
}

TEST(LogHistogram, EmptyIsAllZero)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogram, SingleSampleIsExactEverywhere)
{
    LogHistogram h;
    h.record(0.0073);
    EXPECT_EQ(h.count(), 1);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0073);
    // One sample: every quantile is clamped to [min, max] = the value.
    for (double q : {0.0, 0.01, 0.5, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(h.quantile(q), 0.0073) << "q=" << q;
}

TEST(LogHistogram, NegativeClampsToZeroAndNanDrops)
{
    LogHistogram h;
    h.record(-5.0);
    EXPECT_EQ(h.count(), 1);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.sum(), 0.0);
    h.record(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(h.count(), 1); // NaN never lands
}

TEST(LogHistogram, ExtremesLandInUnderflowAndOverflowBuckets)
{
    EXPECT_EQ(LogHistogram::bucketIndex(0.0), 0);
    EXPECT_EQ(LogHistogram::bucketIndex(1e-15), 0);
    EXPECT_EQ(LogHistogram::bucketIndex(1e15),
              LogHistogram::kBuckets - 1);
    LogHistogram h;
    h.record(1e15);
    h.record(1e-15);
    EXPECT_EQ(h.count(), 2);
    // min/max stay exact even for out-of-range samples...
    EXPECT_DOUBLE_EQ(h.min(), 1e-15);
    EXPECT_DOUBLE_EQ(h.max(), 1e15);
    // ...and quantiles clamp to them instead of a bucket midpoint.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1e15);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1e-15);
}

TEST(LogHistogram, BucketIndexIsMonotonic)
{
    int last = -1;
    for (double v = 1e-14; v < 1e13; v *= 1.07) {
        int index = LogHistogram::bucketIndex(v);
        EXPECT_GE(index, last) << "v=" << v;
        EXPECT_GE(index, 0);
        EXPECT_LT(index, LogHistogram::kBuckets);
        last = index;
    }
    EXPECT_EQ(last, LogHistogram::kBuckets - 1);
}

TEST(LogHistogram, UniformStreamWithinDocumentedBound)
{
    std::mt19937 rng(1234);
    std::uniform_real_distribution<double> dist(1e-4, 10.0);
    std::vector<double> samples;
    samples.reserve(10000);
    for (int i = 0; i < 10000; ++i)
        samples.push_back(dist(rng));
    LogHistogram h;
    recordAll(&h, samples);
    EXPECT_EQ(h.count(), 10000);
    for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999})
        expectQuantileWithinBound(h, samples, q);
}

TEST(LogHistogram, LognormalStreamWithinDocumentedBound)
{
    // Heavy tail spanning many octaves — the shape compile latencies
    // actually have.
    std::mt19937 rng(99);
    std::lognormal_distribution<double> dist(-3.0, 2.0);
    std::vector<double> samples;
    samples.reserve(20000);
    for (int i = 0; i < 20000; ++i)
        samples.push_back(dist(rng));
    LogHistogram h;
    recordAll(&h, samples);
    for (double q : {0.5, 0.9, 0.95, 0.99})
        expectQuantileWithinBound(h, samples, q);
}

TEST(LogHistogram, DuplicateHeavyStreamWithinDocumentedBound)
{
    // Quantized durations (timer granularity) stress nearest-rank ties.
    std::mt19937 rng(7);
    std::uniform_int_distribution<int> dist(1, 20);
    std::vector<double> samples;
    for (int i = 0; i < 5000; ++i)
        samples.push_back(dist(rng) * 1e-3);
    LogHistogram h;
    recordAll(&h, samples);
    for (double q : {0.1, 0.5, 0.9, 0.99})
        expectQuantileWithinBound(h, samples, q);
}

TEST(LogHistogram, MergeMatchesCombinedStreamExactly)
{
    std::mt19937 rng(42);
    std::lognormal_distribution<double> dist(0.0, 1.5);
    std::vector<double> a, b, all;
    for (int i = 0; i < 3000; ++i)
        a.push_back(dist(rng));
    for (int i = 0; i < 5000; ++i)
        b.push_back(dist(rng));
    all = a;
    all.insert(all.end(), b.begin(), b.end());

    LogHistogram ha, hb, combined;
    recordAll(&ha, a);
    recordAll(&hb, b);
    recordAll(&combined, all);
    ha.merge(hb);

    // Same bucket layout -> a merge is exact, not approximate: the
    // merged histogram is indistinguishable from one that saw the
    // concatenated stream.
    EXPECT_EQ(ha.count(), combined.count());
    EXPECT_DOUBLE_EQ(ha.min(), combined.min());
    EXPECT_DOUBLE_EQ(ha.max(), combined.max());
    EXPECT_NEAR(ha.sum(), combined.sum(), 1e-9 * combined.sum());
    for (double q : {0.01, 0.5, 0.9, 0.99})
        EXPECT_DOUBLE_EQ(ha.quantile(q), combined.quantile(q)) << "q=" << q;
}

TEST(LogHistogram, MergeEmptyIsIdentity)
{
    LogHistogram h, empty;
    h.record(1.0);
    h.record(2.0);
    h.merge(empty);
    EXPECT_EQ(h.count(), 2);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 2.0);

    LogHistogram target;
    target.merge(h);
    EXPECT_EQ(target.count(), 2);
    EXPECT_DOUBLE_EQ(target.quantile(1.0), 2.0);
}

TEST(LogHistogram, CopyIsIndependentSnapshot)
{
    LogHistogram h;
    h.record(1.0);
    h.record(4.0);

    LogHistogram snap = h;
    EXPECT_EQ(snap.count(), 2);
    EXPECT_DOUBLE_EQ(snap.min(), 1.0);
    EXPECT_DOUBLE_EQ(snap.max(), 4.0);
    EXPECT_DOUBLE_EQ(snap.quantile(1.0), h.quantile(1.0));

    // The copy is detached: later records touch only the original.
    h.record(16.0);
    EXPECT_EQ(snap.count(), 2);
    EXPECT_EQ(h.count(), 3);

    LogHistogram assigned;
    assigned.record(99.0);
    assigned = snap;
    EXPECT_EQ(assigned.count(), 2);
    EXPECT_DOUBLE_EQ(assigned.max(), 4.0);
}

/**
 * subtractSnapshot(earlier) leaves exactly the samples recorded after
 * the snapshot was taken: exact bucket counts, count and sum; min/max
 * re-derived from the surviving buckets' bounds (not recoverable from
 * cumulative extremes), so they hold within kMaxRelativeError and the
 * interval quantiles match a histogram that saw only the interval.
 */
TEST(LogHistogram, SubtractSnapshotLeavesIntervalSamples)
{
    std::mt19937 rng(7);
    std::lognormal_distribution<double> dist(0.0, 1.2);
    std::vector<double> before, after;
    for (int i = 0; i < 2000; ++i)
        before.push_back(dist(rng));
    for (int i = 0; i < 3000; ++i)
        after.push_back(dist(rng));

    LogHistogram h, intervalOnly;
    recordAll(&h, before);
    LogHistogram snap = h;
    recordAll(&h, after);
    recordAll(&intervalOnly, after);

    LogHistogram delta = h;
    delta.subtractSnapshot(snap);

    EXPECT_EQ(delta.count(), intervalOnly.count());
    EXPECT_NEAR(delta.sum(), intervalOnly.sum(),
                1e-9 * intervalOnly.sum());
    // Bucket counts subtract exactly, so quantiles agree up to the
    // min/max clamp (exact extremes vs re-derived bucket bounds).
    for (double q : {0.01, 0.5, 0.9, 0.99}) {
        double expected = intervalOnly.quantile(q);
        EXPECT_NEAR(delta.quantile(q), expected,
                    2 * LogHistogram::kMaxRelativeError * expected)
            << "q=" << q;
    }
    // Bucket-bound extremes: within the estimator's documented error.
    EXPECT_NEAR(delta.min(), intervalOnly.min(),
                2 * LogHistogram::kMaxRelativeError * intervalOnly.min());
    EXPECT_NEAR(delta.max(), intervalOnly.max(),
                2 * LogHistogram::kMaxRelativeError * intervalOnly.max());

    // Subtracting everything leaves a well-formed empty histogram.
    LogHistogram zero = h;
    zero.subtractSnapshot(h);
    EXPECT_EQ(zero.count(), 0);
    EXPECT_EQ(zero.sum(), 0.0);
    EXPECT_EQ(zero.min(), 0.0);
    EXPECT_EQ(zero.max(), 0.0);
    EXPECT_EQ(zero.quantile(0.5), 0.0);
}

TEST(LogHistogram, ResetClearsEverything)
{
    LogHistogram h;
    h.record(3.5);
    h.record(0.25);
    h.reset();
    EXPECT_EQ(h.count(), 0);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.quantile(0.9), 0.0);
    h.record(1.0);
    EXPECT_EQ(h.count(), 1);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
}

TEST(LogHistogram, ConcurrentRecordLosesNothing)
{
    // tier1 label -> CI's TSan job runs this: the wait-free record()
    // path must be clean under concurrent writers.
    LogHistogram h;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&h, t] {
            std::mt19937 rng(1000 + t);
            std::uniform_real_distribution<double> dist(1e-3, 1.0);
            for (int i = 0; i < kPerThread; ++i)
                h.record(dist(rng));
        });
    }
    for (std::thread &worker : pool)
        worker.join();
    EXPECT_EQ(h.count(), s64{kThreads} * kPerThread);
    EXPECT_GE(h.min(), 1e-3);
    EXPECT_LE(h.max(), 1.0);
    EXPECT_GT(h.quantile(0.5), 0.0);
}

TEST(MetricsRegistry, ConcurrentCountersAreExact)
{
    MetricsRegistry registry;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 50000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&registry] {
            for (int i = 0; i < kPerThread; ++i)
                registry.counter(Met::kLpSolves).add();
        });
    }
    for (std::thread &worker : pool)
        worker.join();
    EXPECT_EQ(registry.counter(Met::kLpSolves).get(),
              s64{kThreads} * kPerThread);
}

TEST(MetricsRegistry, SnapshotIsDeterministicForEqualWorkloads)
{
    auto populate = [](MetricsRegistry &registry) {
        registry.counter(Met::kMipSolves).add(7);
        registry.counter(Met::kDpBoundaries).add(123);
        registry.gauge(Gau::kSearchThreads).set(4);
        registry.histogram(Hist::kPhaseSegment).record(0.125);
        registry.histogram(Hist::kPhaseSegment).record(0.25);
        registry.counter("custom.alpha").add(1);
        registry.counter("custom.zeta").add(2);
        registry.histogram("custom.latency").record(1.0);
    };
    MetricsRegistry a, b;
    populate(a);
    populate(b);
    // Identical workloads (same recorded values, not just counts) ->
    // byte-identical snapshots, dynamic instruments in sorted order.
    std::string ja = a.snapshotJson();
    EXPECT_EQ(ja, b.snapshotJson());
    EXPECT_NE(ja.find("\"counters\""), std::string::npos);
    EXPECT_NE(ja.find("\"gauges\""), std::string::npos);
    EXPECT_NE(ja.find("\"quantiles\""), std::string::npos);
    EXPECT_NE(ja.find("custom.alpha"), std::string::npos);
    EXPECT_LT(ja.find("custom.alpha"), ja.find("custom.zeta"));
    for (const char *field : {"\"p50\"", "\"p90\"", "\"p95\"", "\"p99\""})
        EXPECT_NE(ja.find(field), std::string::npos) << field;
}

TEST(MetricsRegistry, ResetZeroesBuiltinsAndDynamics)
{
    MetricsRegistry registry;
    registry.counter(Met::kCompiles).add(3);
    registry.counter("custom.x").add(9);
    registry.histogram(Hist::kPhaseCompile).record(1.0);
    registry.reset();
    EXPECT_EQ(registry.counter(Met::kCompiles).get(), 0);
    EXPECT_EQ(registry.counter("custom.x").get(), 0);
    EXPECT_EQ(registry.histogram(Hist::kPhaseCompile).count(), 0);
}

TEST(MetricsRegistry, DynamicInstrumentReferencesAreStable)
{
    MetricsRegistry registry;
    Counter &c = registry.counter("stable.counter");
    c.add(1);
    for (int i = 0; i < 100; ++i)
        registry.counter("churn." + std::to_string(i)).add(1);
    EXPECT_EQ(&c, &registry.counter("stable.counter"));
    EXPECT_EQ(c.get(), 1);
}

TEST(ObsControlPlane, DisabledByDefaultAndHelpersAreNoOps)
{
    ASSERT_FALSE(enabled());
    EXPECT_EQ(metrics(), nullptr);
    EXPECT_EQ(trace(), nullptr);
    // Must not crash with nothing installed.
    count(Met::kCompiles);
    setGauge(Gau::kSearchThreads, 8);
    recordSeconds(Hist::kPhaseCompile, 0.5);
    Span span("noop", "test");
    span.arg("x", 1);
    ScopedPhase phase(Hist::kPhaseCompile, "noop", "test");
    phase.arg("y", 2);
}

TEST(ObsControlPlane, InstallRoutesAndUninstallStops)
{
    MetricsRegistry registry;
    install(&registry, nullptr);
    ASSERT_TRUE(metricsEnabled());
    EXPECT_FALSE(tracingEnabled());
    count(Met::kCompiles);
    count(Met::kMipNodes, 41);
    recordSeconds(Hist::kPhaseCompile, 0.01);
    uninstall();
    count(Met::kCompiles); // after uninstall: dropped
    EXPECT_EQ(registry.counter(Met::kCompiles).get(), 1);
    EXPECT_EQ(registry.counter(Met::kMipNodes).get(), 41);
    EXPECT_EQ(registry.histogram(Hist::kPhaseCompile).count(), 1);
    EXPECT_FALSE(enabled());
}

TEST(ObsControlPlane, ScopedPhaseFeedsHistogramAndTrace)
{
    MetricsRegistry registry;
    TraceRecorder recorder;
    install(&registry, &recorder);
    {
        ScopedPhase phase(Hist::kPhaseSegment, "test.phase", "test");
        phase.arg("ops", 12);
        Span span("test.span", "test");
        span.arg("a", 1);
        span.arg("b", 2);
    }
    uninstall();
    EXPECT_EQ(registry.histogram(Hist::kPhaseSegment).count(), 1);
    EXPECT_GE(registry.histogram(Hist::kPhaseSegment).min(), 0.0);
    EXPECT_EQ(recorder.eventCount(), 2);
    std::string json = recorder.exportJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"test.phase\""), std::string::npos);
    EXPECT_NE(json.find("\"test.span\""), std::string::npos);
    for (const char *field :
         {"\"ph\"", "\"ts\"", "\"dur\"", "\"pid\"", "\"tid\"", "\"name\"",
          "\"args\"", "\"thread_name\""})
        EXPECT_NE(json.find(field), std::string::npos) << field;
}

TEST(TraceRecorder, ThreadsGetDistinctLanes)
{
    MetricsRegistry registry;
    TraceRecorder recorder;
    recorder.setThreadName("main");
    install(&registry, &recorder);
    {
        Span span("main.work", "test");
    }
    std::thread worker([] {
        Span span("worker.work", "test");
    });
    worker.join();
    uninstall();
    EXPECT_EQ(recorder.eventCount(), 2);
    EXPECT_EQ(recorder.droppedEvents(), 0);
    std::string json = recorder.exportJson();
    // Two lanes: the named main thread and an auto-named worker.
    EXPECT_NE(json.find("\"main\""), std::string::npos);
    EXPECT_NE(json.find("\"thread-2\""), std::string::npos);
    EXPECT_NE(json.find("\"tid\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"tid\": 2"), std::string::npos);
}

TEST(TraceRecorder, SecondRecorderDoesNotInheritStaleBuffers)
{
    // The thread-local buffer cache is keyed by recorder id: a fresh
    // recorder on the same thread must start its own lane, not append
    // into the dead recorder's memory.
    auto first = std::make_unique<TraceRecorder>();
    install(nullptr, first.get());
    {
        Span span("first.span", "test");
    }
    uninstall();
    EXPECT_EQ(first->eventCount(), 1);
    first.reset();

    TraceRecorder second;
    install(nullptr, &second);
    {
        Span span("second.span", "test");
    }
    uninstall();
    EXPECT_EQ(second.eventCount(), 1);
    std::string json = second.exportJson();
    EXPECT_NE(json.find("second.span"), std::string::npos);
    EXPECT_EQ(json.find("first.span"), std::string::npos);
}

} // namespace
} // namespace obs
} // namespace cmswitch
