/** @file Structural checks of the model zoo against published configs. */

#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "models/model_zoo.hpp"

namespace cmswitch {
namespace {

s64
countKind(const Graph &g, OpKind kind)
{
    s64 n = 0;
    for (const Operator &op : g.ops())
        if (op.kind == kind)
            ++n;
    return n;
}

TEST(Vgg16, ThirteenConvsThreeFcs)
{
    Graph g = buildVgg16(1);
    EXPECT_EQ(countKind(g, OpKind::kConv2d), 13);
    EXPECT_EQ(countKind(g, OpKind::kMatMul), 3);
    EXPECT_EQ(countKind(g, OpKind::kPool), 5);
    // ~138M parameters.
    EXPECT_NEAR(static_cast<double>(g.totalWeightBytes()), 138.0e6, 8.0e6);
    // ~15.5 GMACs at batch 1.
    EXPECT_NEAR(static_cast<double>(profileGraph(g).totalMacs), 15.5e9,
                1.0e9);
}

TEST(ResNet18, BlockStructure)
{
    Graph g = buildResNet18(1);
    // 1 stem + 16 block convs + 3 downsample projections = 20.
    EXPECT_EQ(countKind(g, OpKind::kConv2d), 20);
    EXPECT_EQ(countKind(g, OpKind::kMatMul), 1);
    EXPECT_EQ(countKind(g, OpKind::kElementwiseAdd), 8);
    // ~11.7M parameters.
    EXPECT_NEAR(static_cast<double>(g.totalWeightBytes()), 11.7e6, 1.5e6);
    // ~1.8 GMACs.
    EXPECT_NEAR(static_cast<double>(profileGraph(g).totalMacs), 1.8e9,
                0.3e9);
}

TEST(ResNet50, BottleneckStructure)
{
    Graph g = buildResNet50(1);
    // 1 stem + 16 blocks x 3 convs + 4 downsample projections = 53.
    EXPECT_EQ(countKind(g, OpKind::kConv2d), 53);
    // ~25.5M parameters, ~4.1 GMACs.
    EXPECT_NEAR(static_cast<double>(g.totalWeightBytes()), 25.5e6, 3.0e6);
    EXPECT_NEAR(static_cast<double>(profileGraph(g).totalMacs), 4.1e9,
                0.5e9);
}

TEST(MobileNetV2, DepthwiseLayersPresent)
{
    Graph g = buildMobileNetV2(1);
    EXPECT_EQ(countKind(g, OpKind::kDepthwiseConv2d), 17);
    // ~3.5M parameters, ~0.3 GMACs.
    EXPECT_NEAR(static_cast<double>(g.totalWeightBytes()), 3.5e6, 1.0e6);
    EXPECT_NEAR(static_cast<double>(profileGraph(g).totalMacs), 0.32e9,
                0.1e9);
}

TEST(Transformers, ParameterCounts)
{
    struct Case
    {
        TransformerConfig cfg;
        double params;
        double tol;
    };
    const Case cases[] = {
        {TransformerConfig::bertBase(), 110e6, 30e6},
        {TransformerConfig::bertLarge(), 340e6, 60e6},
        {TransformerConfig::llama2_7b(), 6.7e9, 0.8e9},
        {TransformerConfig::opt6_7b(), 6.7e9, 0.8e9},
        {TransformerConfig::opt13b(), 13.0e9, 1.5e9},
    };
    for (const Case &c : cases) {
        Graph g = buildTransformerPrefill(c.cfg, 1, 8);
        EXPECT_NEAR(static_cast<double>(g.totalWeightBytes()), c.params,
                    c.tol)
            << c.cfg.name;
    }
}

TEST(Transformers, PrefillOpCountsScaleWithLayers)
{
    TransformerConfig cfg = TransformerConfig::bertBase();
    cfg.layers = 3;
    Graph g = buildTransformerPrefill(cfg, 1, 32);
    // 4 static matmuls + 2 dynamic per layer.
    EXPECT_EQ(countKind(g, OpKind::kMatMul), 3 * 6);
    EXPECT_EQ(countKind(g, OpKind::kDynMatMul), 3 * 2);
    EXPECT_EQ(countKind(g, OpKind::kSoftmax), 3);
}

TEST(Transformers, GatedFfnHasThreeMatmuls)
{
    TransformerConfig cfg = TransformerConfig::llama2_7b();
    cfg.layers = 1;
    Graph g = buildTransformerPrefill(cfg, 1, 16);
    // 4 attention proj + 3 gated FFN + lm head = 8 static matmuls.
    EXPECT_EQ(countKind(g, OpKind::kMatMul), 8);
    EXPECT_EQ(countKind(g, OpKind::kElementwiseMul), 1);
}

TEST(Transformers, DecodeStepUsesKvCache)
{
    TransformerConfig cfg = TransformerConfig::opt6_7b();
    cfg.layers = 2;
    Graph g = buildTransformerDecodeStep(cfg, 4, 128);
    s64 kv_tensors = 0;
    for (TensorId t = 0; t < g.numTensors(); ++t)
        if (g.tensor(t).kind == TensorKind::kKvCache)
            ++kv_tensors;
    EXPECT_EQ(kv_tensors, 2 * 2); // K and V per layer
    EXPECT_EQ(countKind(g, OpKind::kConcat), 2 * 2);
}

TEST(Transformers, DecodeRejectsEncoderOnly)
{
    TransformerConfig cfg = TransformerConfig::bertBase();
    EXPECT_EXIT(buildTransformerDecodeStep(cfg, 1, 8),
                ::testing::ExitedWithCode(1), "decoder-only");
}

TEST(Zoo, Fig14RegistryComplete)
{
    auto entries = fig14Benchmarks();
    ASSERT_EQ(entries.size(), 6u);
    EXPECT_EQ(entries[0].name, "bert-large");
    EXPECT_TRUE(entries[1].generative); // llama2-7b
    EXPECT_TRUE(entries[2].generative); // opt-13b
    EXPECT_FALSE(entries[5].generative); // vgg16
}

TEST(Zoo, TinyMlpValid)
{
    Graph g = buildTinyMlp(2, 16, 32, 8);
    EXPECT_EQ(g.cimOps().size(), 2u);
    GraphProfile p = profileGraph(g);
    EXPECT_EQ(p.totalMacs, 2 * (16LL * 32 + 32 * 8));
}

} // namespace
} // namespace cmswitch
