/**
 * @file
 * Tests for the compilation service: plan-cache hit/miss/eviction and
 * single-flight semantics, request-key canonicalisation, and the
 * thread-pooled CompileService over small workloads. The full
 * scenario-matrix determinism sweep lives in
 * service_determinism_test.cpp (e2e label).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "service/compile_service.hpp"
#include "service/json_report.hpp"
#include "support/serialize.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

ArtifactPtr
dummyArtifact(const std::string &key)
{
    auto artifact = std::make_shared<CompileArtifact>();
    artifact->key = key;
    return artifact;
}

TEST(PlanCache, MissThenHitSharesOneArtifact)
{
    PlanCache cache(8);
    s64 computes = 0;
    auto compute = [&] {
        ++computes;
        return dummyArtifact("k1");
    };
    ArtifactPtr first = cache.getOrCompute("k1", compute);
    ArtifactPtr second = cache.getOrCompute("k1", compute);
    EXPECT_EQ(computes, 1);
    EXPECT_EQ(first.get(), second.get());
    PlanCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.evictions, 0);
    EXPECT_EQ(cache.size(), 1);
}

TEST(PlanCache, DistinctKeysComputeSeparately)
{
    PlanCache cache(8);
    cache.getOrCompute("a", [] { return dummyArtifact("a"); });
    cache.getOrCompute("b", [] { return dummyArtifact("b"); });
    PlanCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 2);
    EXPECT_EQ(stats.hits, 0);
    EXPECT_EQ(cache.size(), 2);
}

TEST(PlanCache, EvictsLeastRecentlyUsedAtCapacity)
{
    PlanCache cache(2);
    cache.getOrCompute("a", [] { return dummyArtifact("a"); });
    cache.getOrCompute("b", [] { return dummyArtifact("b"); });
    cache.getOrCompute("a", [] { return dummyArtifact("a"); }); // a is MRU
    cache.getOrCompute("c", [] { return dummyArtifact("c"); }); // evicts b

    s64 recomputes = 0;
    cache.getOrCompute("a", [&] {
        ++recomputes;
        return dummyArtifact("a");
    });
    cache.getOrCompute("b", [&] {
        ++recomputes;
        return dummyArtifact("b");
    });
    EXPECT_EQ(recomputes, 1) << "a must survive, b must be evicted";
    EXPECT_EQ(cache.stats().evictions, 2) << "b evicted by c, c by b";
    EXPECT_EQ(cache.size(), 2);
}

TEST(PlanCache, SingleFlightJoinsConcurrentRequests)
{
    PlanCache cache(8);
    std::atomic<s64> computes{0};
    std::atomic<bool> release{false};

    auto slowCompute = [&] {
        ++computes;
        while (!release.load())
            std::this_thread::yield();
        return dummyArtifact("slow");
    };

    std::vector<std::thread> threads;
    std::vector<ArtifactPtr> results(4);
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            results[static_cast<std::size_t>(t)] =
                cache.getOrCompute("slow", slowCompute);
        });
    }
    // Give every thread a chance to reach the cache, then release the
    // single owner; all four must share its artifact.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    release = true;
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(computes.load(), 1) << "only one in-flight compute per key";
    for (const ArtifactPtr &r : results) {
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(r.get(), results[0].get());
    }
    PlanCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.hits, 3);
}

TEST(PlanCache, ThrowingComputeRetriesLater)
{
    PlanCache cache(8);
    EXPECT_THROW(cache.getOrCompute(
                     "bad", []() -> ArtifactPtr {
                         throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
    // The failed entry must not poison the key.
    ArtifactPtr ok = cache.getOrCompute("bad",
                                        [] { return dummyArtifact("bad"); });
    EXPECT_NE(ok, nullptr);
    EXPECT_EQ(cache.stats().misses, 2);
}

TEST(RequestKey, IdenticalContentIdenticalKey)
{
    CompileRequest a;
    a.chip = testing::tinyChip(8);
    a.workload = testing::chainMlp(2);
    CompileRequest b = a;
    EXPECT_EQ(requestKey(a), requestKey(b));
    EXPECT_EQ(requestKey(a).size(), 16u);
}

TEST(RequestKey, EveryComponentChangesTheKey)
{
    CompileRequest base;
    base.chip = testing::tinyChip(8);
    base.workload = testing::chainMlp(2);

    CompileRequest chip = base;
    chip.chip.numSwitchArrays = 9;
    EXPECT_NE(requestKey(base), requestKey(chip));

    CompileRequest workload = base;
    workload.workload = testing::chainMlp(3);
    EXPECT_NE(requestKey(base), requestKey(workload));

    CompileRequest compiler = base;
    compiler.compilerId = "puma";
    EXPECT_NE(requestKey(base), requestKey(compiler));

    CompileRequest optimize = base;
    optimize.optimize = true;
    EXPECT_NE(requestKey(base), requestKey(optimize));
}

TEST(RequestKey, SearchThreadsDoesNotChangeTheKey)
{
    // Plans are byte-identical for any search width (segmenter_diff
    // thread sweep), so the width must stay out of the key: a warm
    // cache serves requests compiled at any width.
    CompileRequest base;
    base.chip = testing::tinyChip(8);
    base.workload = testing::chainMlp(2);

    CompileRequest wide = base;
    wide.searchThreads = 8;
    EXPECT_EQ(requestKey(base), requestKey(wide));
}

TEST(CompileArtifactFn, CompilesValidatesAndPrices)
{
    CompileRequest request;
    request.chip = testing::tinyChip(8);
    request.workload = testing::chainMlp(2);
    ArtifactPtr artifact = compileArtifact(request);
    ASSERT_NE(artifact, nullptr);
    EXPECT_EQ(artifact->key, requestKey(request));
    EXPECT_TRUE(artifact->validation.ok())
        << artifact->validation.summary();
    EXPECT_GT(artifact->result.totalCycles(), 0);
    EXPECT_GT(artifact->energy.totalPj(), 0.0);
}

TEST(CompileService, SubmitDeduplicatesIdenticalRequests)
{
    CompileService service({.threads = 4, .cacheCapacity = 16, .searchThreads = 1, .cacheDir = ""});
    CompileRequest request;
    request.chip = testing::tinyChip(8);
    request.workload = testing::chainMlp(2);

    std::vector<std::future<ArtifactPtr>> futures;
    for (int i = 0; i < 8; ++i)
        futures.push_back(service.submit(request));
    std::vector<ArtifactPtr> artifacts;
    for (auto &f : futures)
        artifacts.push_back(f.get());

    for (const ArtifactPtr &a : artifacts)
        EXPECT_EQ(a.get(), artifacts[0].get()) << "plans must be shared";

    CompileServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests, 8);
    EXPECT_EQ(stats.cache.misses, 1);
    EXPECT_EQ(stats.cache.hits, 7);
}

TEST(CompileService, MixedRequestsAllCompile)
{
    CompileService service({.threads = 3, .cacheCapacity = 16, .searchThreads = 1, .cacheDir = ""});
    std::vector<std::future<ArtifactPtr>> futures;
    for (s64 n = 1; n <= 4; ++n) {
        CompileRequest request;
        request.chip = testing::tinyChip(8);
        request.workload = testing::chainMlp(n);
        futures.push_back(service.submit(request));
        futures.push_back(service.submit(std::move(request))); // duplicate
    }
    s64 distinct_cycles = 0;
    std::set<Cycles> seen;
    for (auto &f : futures) {
        ArtifactPtr a = f.get();
        ASSERT_NE(a, nullptr);
        EXPECT_TRUE(a->validation.ok());
        if (seen.insert(a->result.totalCycles()).second)
            ++distinct_cycles;
    }
    EXPECT_EQ(service.stats().cache.misses, 4);
    EXPECT_EQ(service.stats().cache.hits, 4);
    EXPECT_GE(distinct_cycles, 2) << "different graphs, different plans";
}

TEST(CompileService, RejectsInvalidOptionsAtConstruction)
{
    // Regression: every service knob is validated fatally up front —
    // a zero/negative pool or search width must never reach the worker
    // spawn loop or a compile.
    // Braces: `CompileService(no_workers)` would declare a variable.
    CompileServiceOptions no_workers;
    no_workers.threads = 0;
    EXPECT_EXIT(CompileService{no_workers}, ::testing::ExitedWithCode(1),
                "worker thread");
    CompileServiceOptions no_search;
    no_search.searchThreads = 0;
    EXPECT_EXIT(CompileService{no_search}, ::testing::ExitedWithCode(1),
                "searchThreads");
    CompileServiceOptions no_cache;
    no_cache.cacheCapacity = 0;
    EXPECT_EXIT(CompileService{no_cache}, ::testing::ExitedWithCode(1),
                "cacheCapacity");
}

TEST(CompileArtifactFn, RejectsInvalidSearchThreads)
{
    CompileRequest request;
    request.chip = testing::tinyChip(8);
    request.workload = testing::chainMlp(2);
    request.searchThreads = 0;
    EXPECT_EXIT(compileArtifact(request), ::testing::ExitedWithCode(1),
                "searchThreads");
}

TEST(CompileService, StampsSearchThreadsAndPreservesPlans)
{
    // The service stamps its configured width onto every request; the
    // resulting artifact must byte-match a serial compile of the same
    // request (the determinism contract, exercised through the service
    // entry points rather than the compiler directly).
    CompileRequest request;
    request.chip = testing::tinyChip(8);
    request.workload = testing::chainMlp(3);

    ArtifactPtr serial = compileArtifact(request);

    CompileServiceOptions options;
    options.threads = 2;
    options.cacheCapacity = 16;
    options.searchThreads = 4;
    CompileService service(options);
    ArtifactPtr parallel = service.compileNow(request);
    ASSERT_NE(parallel, nullptr);
    EXPECT_TRUE(parallel->validation.ok());
    EXPECT_EQ(parallel->key, serial->key);

    auto planBytes = [](const ArtifactPtr &a) {
        CompileResult result = a->result;
        result.compileSeconds = 0.0; // wall clock differs, nothing else
        BinaryWriter w;
        result.writeBinary(w);
        return w.take();
    };
    EXPECT_EQ(planBytes(parallel), planBytes(serial));
}

TEST(CompileService, CompileNowSharesCacheWithSubmit)
{
    CompileService service({.threads = 2, .cacheCapacity = 16, .searchThreads = 1, .cacheDir = ""});
    CompileRequest request;
    request.chip = testing::tinyChip(8);
    request.workload = testing::chainMlp(2);
    ArtifactPtr now = service.compileNow(request);
    ArtifactPtr later = service.submit(request).get();
    EXPECT_EQ(now.get(), later.get());
    EXPECT_EQ(service.stats().cache.misses, 1);
}

TEST(JsonReport, DeterministicAcrossEqualRequests)
{
    CompileRequest request;
    request.chip = testing::tinyChip(8);
    request.workload = testing::chainMlp(2);
    std::string first = renderCompileReport(*compileArtifact(request));
    std::string second = renderCompileReport(*compileArtifact(request));
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("\"schema\": \"cmswitch-compile-report-v2\""),
              std::string::npos);
    EXPECT_NE(first.find("\"valid\": true"), std::string::npos);
}

} // namespace
} // namespace cmswitch
