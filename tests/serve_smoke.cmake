# Smoke test for `cmswitchc serve` — the whole daemon surface through
# real processes:
#
#   1. stdin/stdout session: the pinned admission scenario (hold the
#      workers, then a admitted / b coalesced / e admitted with an
#      already-expired deadline / d shed at the gate; release; a late
#      duplicate f memory-hits) — every response and every counter of
#      the cmswitch-serve-status-v2 report checked, plus --status-every
#      periodic lines on stderr (which additionally carry an "interval"
#      delta block; the on-demand status op must not).
#   2. Unix-socket session: a background daemon plus the `serve
#      --connect` client (two processes), exercising one coalesced
#      duplicate and one admission shed over the socket, then a clean
#      SIGTERM shutdown (exit 0, socket and pid file unlinked).
#
# Run as `cmake -DCMSWITCHC=<exe> -DWORK_DIR=<dir> -P serve_smoke.cmake`.

if(NOT CMSWITCHC)
    message(FATAL_ERROR "pass -DCMSWITCHC=<path to cmswitchc>")
endif()
if(NOT WORK_DIR)
    message(FATAL_ERROR "pass -DWORK_DIR=<scratch directory>")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# The one response line whose "id" is ${id}, from the ;-list ${lines}.
function(response_for id lines_var out_var)
    set(found "")
    foreach(line IN LISTS ${lines_var})
        string(FIND "${line}" "\"id\":\"${id}\"" at)
        if(NOT at EQUAL -1)
            if(found)
                message(FATAL_ERROR "two responses with id '${id}'")
            endif()
            set(found "${line}")
        endif()
    endforeach()
    if(NOT found)
        message(FATAL_ERROR "no response with id '${id}'")
    endif()
    set(${out_var} "${found}" PARENT_SCOPE)
endfunction()

function(expect_field doc expected)
    string(JSON actual GET "${doc}" ${ARGN})
    if(NOT actual STREQUAL expected)
        message(FATAL_ERROR "field ${ARGN}: expected '${expected}', "
                            "got '${actual}' in:\n${doc}")
    endif()
endfunction()

# --- 1. stdin session: the pinned admission scenario ------------------

file(WRITE ${WORK_DIR}/session.txt
"{\"op\":\"hold\",\"id\":\"h\"}
{\"op\":\"compile\",\"id\":\"a\",\"model\":\"tiny-mlp\",\"priority\":5}
{\"op\":\"compile\",\"id\":\"b\",\"model\":\"tiny-mlp\",\"priority\":5}
{\"op\":\"compile\",\"id\":\"e\",\"model\":\"tiny-mlp\",\"chip\":\"prime\",\"priority\":9,\"deadline_ms\":0}
{\"op\":\"compile\",\"id\":\"d\",\"model\":\"tiny-mlp\",\"compiler\":\"occ\",\"priority\":1}
{\"op\":\"release\",\"id\":\"r\"}
{\"op\":\"drain\",\"id\":\"dr\"}
{\"op\":\"compile\",\"id\":\"f\",\"model\":\"tiny-mlp\",\"priority\":5}
{\"op\":\"drain\",\"id\":\"dr2\"}
{\"op\":\"status\",\"id\":\"s\"}
{\"op\":\"shutdown\",\"id\":\"x\"}
")

execute_process(COMMAND ${CMSWITCHC} serve --max-inflight 1 --max-queue 2
                        --status-every 1
                INPUT_FILE ${WORK_DIR}/session.txt
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err
                RESULT_VARIABLE result
                TIMEOUT 120)
if(NOT result EQUAL 0)
    message(FATAL_ERROR "stdin serve session failed (${result}):\n${err}")
endif()
string(REPLACE "\n" ";" lines "${out}")

# a compiled cold and led the group; its duplicate b rode along and got
# the same plan (same key) without a second compile.
response_for(a lines resp)
expect_field("${resp}" "ok" status)
expect_field("${resp}" "cold" cache)
string(JSON a_key GET "${resp}" key)
string(JSON coalesced GET "${resp}" coalesced)
if(coalesced)
    message(FATAL_ERROR "leader 'a' marked coalesced")
endif()
response_for(b lines resp)
expect_field("${resp}" "ok" status)
expect_field("${resp}" "${a_key}" key)
string(JSON coalesced GET "${resp}" coalesced)
if(NOT coalesced)
    message(FATAL_ERROR "duplicate 'b' not marked coalesced")
endif()

# d arrived at a full queue with the lowest priority: shed at the gate
# with an explicit backpressure document.
response_for(d lines resp)
expect_field("${resp}" "shed" status)
expect_field("${resp}" "admission" reason)
expect_field("${resp}" "2" queue_depth)

# e's deadline had passed by dispatch time: shed, never compiled —
# even though it was the highest-priority ticket in the queue.
response_for(e lines resp)
expect_field("${resp}" "shed" status)
expect_field("${resp}" "deadline" reason)

# f re-requested a's plan after completion: in-memory cache hit.
response_for(f lines resp)
expect_field("${resp}" "ok" status)
expect_field("${resp}" "memory" cache)

# The status-v2 report: every counter pinned by the scenario.
response_for(s lines status)
expect_field("${status}" "cmswitch-serve-status-v2" schema)
expect_field("${status}" "5" requests received)
expect_field("${status}" "3" requests admitted)
expect_field("${status}" "1" requests coalesced)
expect_field("${status}" "1" requests shed_admission)
expect_field("${status}" "1" requests shed_deadline)
expect_field("${status}" "0" requests errors)
expect_field("${status}" "3" requests completed)
expect_field("${status}" "0" queue depth)
expect_field("${status}" "0" queue inflight)
expect_field("${status}" "1" cache memory)
expect_field("${status}" "0" cache disk)
expect_field("${status}" "0" cache neighbor)
expect_field("${status}" "1" cache cold)
expect_field("${status}" "1" plan_cache hits)
expect_field("${status}" "1" plan_cache misses)
expect_field("${status}" "2" latency execute_seconds count)
expect_field("${status}" "2" latency queue_wait_seconds count)
foreach(p p50 p90 p95 p99)
    string(JSON q GET "${status}" latency execute_seconds ${p})
    if(q LESS_EQUAL 0)
        message(FATAL_ERROR "status latency ${p}: expected > 0, got '${q}'")
    endif()
endforeach()

# The on-demand status op is a pure read: cumulative counters only,
# never an interval block (that belongs to periodic lines).
string(JSON interval ERROR_VARIABLE json_err GET "${status}" interval)
if(json_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "status op carried an interval block:\n${status}")
endif()

# --status-every 1 put periodic status lines on stderr, each carrying
# true interval deltas. Two compile groups completed (a's group and
# f's), so there are exactly two periodic lines, every one with an
# interval block whose completed counts sum to the cumulative total.
string(FIND "${err}" "cmswitch-serve-status-v1" at)
if(NOT at EQUAL -1)
    message(FATAL_ERROR "stale status-v1 schema on stderr:\n${err}")
endif()
string(REPLACE "\n" ";" err_lines "${err}")
set(periodic "")
foreach(line IN LISTS err_lines)
    string(FIND "${line}" "cmswitch-serve-status-v2" at)
    if(NOT at EQUAL -1)
        list(APPEND periodic "${line}")
    endif()
endforeach()
list(LENGTH periodic n_periodic)
if(NOT n_periodic EQUAL 2)
    message(FATAL_ERROR "expected 2 periodic status lines, "
                        "got ${n_periodic}:\n${err}")
endif()
set(interval_total 0)
foreach(line IN LISTS periodic)
    string(JSON c GET "${line}" interval completed)
    if(c LESS_EQUAL 0)
        message(FATAL_ERROR "periodic interval completed: expected > 0, "
                            "got '${c}' in:\n${line}")
    endif()
    math(EXPR interval_total "${interval_total} + ${c}")
endforeach()
list(GET periodic 1 last_periodic)
string(JSON cumulative GET "${last_periodic}" requests completed)
if(NOT interval_total EQUAL cumulative)
    message(FATAL_ERROR "interval completed deltas (${interval_total}) do "
                        "not sum to the cumulative count (${cumulative})")
endif()

message(STATUS "serve_smoke: stdin session checks passed")

# --- 2. Unix-socket daemon + client, SIGTERM shutdown -----------------

if(NOT UNIX)
    message(STATUS "serve_smoke: skipping socket checks (not UNIX)")
    return()
endif()

set(sock ${WORK_DIR}/serve.sock)
set(pidfile ${WORK_DIR}/serve.pid)

# Background the daemon through sh so execute_process returns at once;
# the wrapper stays behind the daemon and records its exit code. The
# whole background group is redirected away from the inherited pipes —
# anything still holding this process's stdout/stderr would keep ctest
# waiting for EOF until the test timeout.
execute_process(
    COMMAND sh -c "{ '${CMSWITCHC}' serve --socket '${sock}' \
--pid-file '${pidfile}' --max-inflight 1 --max-queue 1 \
> '${WORK_DIR}/daemon.out' 2> '${WORK_DIR}/daemon.err'; \
echo $? > '${WORK_DIR}/daemon.exit'; } > /dev/null 2>&1 < /dev/null &"
    RESULT_VARIABLE result)
if(NOT result EQUAL 0)
    message(FATAL_ERROR "could not launch the serve daemon (${result})")
endif()

# The pid file is written only after listen() succeeds: poll for it as
# the readiness signal.
set(ready FALSE)
foreach(i RANGE 100)
    if(EXISTS ${pidfile})
        set(ready TRUE)
        break()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.2)
endforeach()
if(NOT ready)
    file(READ ${WORK_DIR}/daemon.err err)
    message(FATAL_ERROR "daemon never became ready:\n${err}")
endif()

# A socket session with one coalesced duplicate (h rides g under hold)
# and one admission shed (i at a full 1-slot queue, lower priority).
file(WRITE ${WORK_DIR}/client.txt
"# serve_smoke socket session
{\"op\":\"hold\",\"id\":\"ch\"}
{\"op\":\"compile\",\"id\":\"g\",\"model\":\"tiny-mlp\",\"priority\":5}
{\"op\":\"compile\",\"id\":\"h\",\"model\":\"tiny-mlp\",\"priority\":5}
{\"op\":\"compile\",\"id\":\"i\",\"model\":\"tiny-mlp\",\"chip\":\"prime\"}
{\"op\":\"release\",\"id\":\"cr\"}
{\"op\":\"drain\",\"id\":\"cd\"}
{\"op\":\"status\",\"id\":\"cs\"}
")
execute_process(COMMAND ${CMSWITCHC} serve --connect ${sock}
                        --script ${WORK_DIR}/client.txt
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err
                RESULT_VARIABLE result
                TIMEOUT 120)
if(NOT result EQUAL 0)
    message(FATAL_ERROR "serve client failed (${result}):\n${err}")
endif()
string(REPLACE "\n" ";" lines "${out}")

response_for(g lines resp)
expect_field("${resp}" "ok" status)
expect_field("${resp}" "cold" cache)
response_for(h lines resp)
string(JSON coalesced GET "${resp}" coalesced)
if(NOT coalesced)
    message(FATAL_ERROR "socket duplicate 'h' not marked coalesced")
endif()
response_for(i lines resp)
expect_field("${resp}" "shed" status)
expect_field("${resp}" "admission" reason)
response_for(cs lines status)
expect_field("${status}" "cmswitch-serve-status-v2" schema)
expect_field("${status}" "3" requests received)
expect_field("${status}" "1" requests admitted)
expect_field("${status}" "1" requests coalesced)
expect_field("${status}" "1" requests shed_admission)
expect_field("${status}" "2" requests completed)

# SIGTERM: the daemon must drain, report the signal, unlink its socket
# and pid file, and exit 0.
file(READ ${pidfile} daemon_pid)
string(STRIP "${daemon_pid}" daemon_pid)
execute_process(COMMAND sh -c "kill -TERM ${daemon_pid}"
                RESULT_VARIABLE result)
if(NOT result EQUAL 0)
    message(FATAL_ERROR "could not signal daemon pid ${daemon_pid}")
endif()
set(stopped FALSE)
foreach(i RANGE 100)
    if(EXISTS ${WORK_DIR}/daemon.exit)
        set(stopped TRUE)
        break()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.2)
endforeach()
if(NOT stopped)
    message(FATAL_ERROR "daemon did not exit after SIGTERM")
endif()
file(READ ${WORK_DIR}/daemon.exit daemon_exit)
string(STRIP "${daemon_exit}" daemon_exit)
if(NOT daemon_exit EQUAL 0)
    file(READ ${WORK_DIR}/daemon.err err)
    message(FATAL_ERROR "daemon exited ${daemon_exit} on SIGTERM:\n${err}")
endif()
file(READ ${WORK_DIR}/daemon.err err)
string(FIND "${err}" "shutting down (signal)" at)
if(at EQUAL -1)
    message(FATAL_ERROR "daemon stderr missing shutdown message:\n${err}")
endif()
if(EXISTS ${sock})
    message(FATAL_ERROR "daemon left its socket behind: ${sock}")
endif()
if(EXISTS ${pidfile})
    message(FATAL_ERROR "daemon left its pid file behind: ${pidfile}")
endif()

message(STATUS "serve_smoke: all checks passed "
               "(stdin + socket sessions, clean SIGTERM shutdown)")
