/**
 * @file
 * Scenario-matrix vocabulary: named chips, workloads and compilers the
 * cross-cutting sweeps iterate over (tests/scenario_matrix_test.cpp).
 * Lives apart from test_util.hpp so the fast unit suites do not inherit
 * the whole compiler/baselines/model-zoo header stack.
 *
 * Workloads are test-scale versions of the paper's benchmarks: CNNs at
 * batch 1, transformers truncated to a few layers. Transformer depth is
 * a knob: the e2e sweeps run kE2eTransformerLayers (4) for a deeper
 * inter-segment schedule, the cheap/tier1 callers keep
 * kTier1TransformerLayers (2).
 *
 * When CMSWITCH_SCENARIO_CACHE_DIR is set in the environment,
 * scenarioCompile() layers a persistent DiskPlanCache under its
 * process-wide PlanCache, so the scenario suites of different test
 * binaries (and repeated ctest runs) share compiled plans on disk
 * instead of recompiling the matrix per process.
 */

#ifndef CMSWITCH_TESTS_SCENARIO_UTIL_HPP
#define CMSWITCH_TESTS_SCENARIO_UTIL_HPP

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline.hpp"
#include "models/model_zoo.hpp"
#include "service/compile_service.hpp"
#include "service/disk_plan_cache.hpp"
#include "support/logging.hpp"
#include "test_util.hpp"

namespace cmswitch::testing {

/** Transformer depth of the tier1-scale scenario workloads. */
inline constexpr s64 kTier1TransformerLayers = 2;

/** Transformer depth of the e2e-labelled scenario sweeps. */
inline constexpr s64 kE2eTransformerLayers = 4;

inline std::vector<std::string>
scenarioChipNames()
{
    return {"dynaplasia", "prime", "tiny"};
}

inline ChipConfig
scenarioChip(const std::string &name)
{
    if (name == "dynaplasia")
        return ChipConfig::dynaplasia();
    if (name == "prime")
        return ChipConfig::prime();
    // 16 arrays of 128x128: big enough that an opt-6.7b matmul tiles in
    // the thousands (not millions), tiny enough to stress multiplexing.
    if (name == "tiny")
        return tinyChip(16, 128);
    cmswitch_fatal("unknown scenario chip '", name, "'");
}

inline std::vector<std::string>
scenarioWorkloadNames()
{
    return {"resnet18", "mobilenetv2", "bert-base-prefill",
            "opt-6.7b-decode"};
}

inline Graph
scenarioWorkload(const std::string &name,
                 s64 transformer_layers = kTier1TransformerLayers)
{
    if (name == "resnet18")
        return buildResNet18(1);
    if (name == "mobilenetv2")
        return buildMobileNetV2(1);
    if (name == "bert-base-prefill") {
        TransformerConfig cfg = TransformerConfig::bertBase();
        cfg.layers = transformer_layers;
        return buildTransformerPrefill(cfg, 1, 64);
    }
    if (name == "opt-6.7b-decode") {
        TransformerConfig cfg = TransformerConfig::opt6_7b();
        cfg.layers = transformer_layers;
        return buildTransformerDecodeStep(cfg, 1, 256);
    }
    cmswitch_fatal("unknown scenario workload '", name, "'");
}

/** Every registered compiler, so new baselines join the matrix free. */
inline std::vector<std::string>
scenarioCompilerNames()
{
    std::vector<std::string> names;
    for (const auto &compiler : makeAllCompilers(tinyChip()))
        names.push_back(compiler->name());
    return names;
}

/**
 * Compile one scenario cell through a process-wide plan cache, so the
 * cross-cutting sweeps (validator cells, dominance, mode pressure)
 * reuse each (chip, workload, compiler) plan instead of compiling it
 * once per sweep. Artifacts are immutable and shared — do not mutate.
 *
 * With CMSWITCH_SCENARIO_CACHE_DIR set, in-process misses consult the
 * named persistent cache first and publish fresh compiles back, so the
 * whole scenario matrix warm-runs from disk across processes.
 */
inline ArtifactPtr
scenarioCompile(const std::string &chip_name,
                const std::string &workload_name,
                const std::string &compiler_name,
                s64 transformer_layers = kTier1TransformerLayers)
{
    // A bare PlanCache (no worker pool — everything compiles in the
    // calling thread), big enough that one full matrix (48 cells) at
    // both transformer depths never evicts: every repeat in-process is
    // a guaranteed hit.
    static PlanCache cache(256);
    static DiskPlanCache *disk = []() -> DiskPlanCache * {
        const char *dir = std::getenv("CMSWITCH_SCENARIO_CACHE_DIR");
        return dir && *dir ? new DiskPlanCache(dir) : nullptr;
    }();
    CompileRequest request;
    request.chip = scenarioChip(chip_name);
    request.workload = scenarioWorkload(workload_name, transformer_layers);
    request.compilerId = compiler_name;
    std::string key = requestKey(request);
    return cache.getOrCompute(key, [&request, &key] {
        auto compile = [&request, &key] {
            return compileArtifact(request, key);
        };
        return disk ? disk->loadOrCompute(key, compile) : compile();
    });
}

} // namespace cmswitch::testing

#endif // CMSWITCH_TESTS_SCENARIO_UTIL_HPP
