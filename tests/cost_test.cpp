/** @file Unit tests for the Eq. 10 latency model and segment costs. */

#include <gtest/gtest.h>

#include "cost/cost_model.hpp"
#include "models/model_zoo.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

OpWorkload
simpleWorkload(const ChipConfig &chip, s64 tiles, double ai, s64 rows = 1000)
{
    OpWorkload w;
    w.name = std::string("w");
    w.weightTiles = tiles;
    w.utilization = 1.0;
    w.movingRows = rows;
    w.weightBytes = tiles * chip.arrayRows * chip.arrayCols;
    w.macs = w.weightBytes * rows;
    w.aiMacsPerByte = ai;
    // Back out traffic so maxUsefulMemoryArrays is generous.
    w.inputBytes = static_cast<s64>(static_cast<double>(w.macs) / ai);
    w.outputBytes = 0;
    return w;
}

TEST(CostModel, InfeasibleWithoutWeightTiles)
{
    Deha deha(testing::tinyChip());
    CostModel cost(deha);
    OpWorkload w = simpleWorkload(deha.config(), 4, 10.0);
    EXPECT_EQ(cost.opLatency(w, OpAllocation{3, 0, 0}), kInfCycles);
    EXPECT_LT(cost.opLatency(w, OpAllocation{4, 0, 0}), kInfCycles);
}

TEST(CostModel, ComputeBoundScalesWithDuplication)
{
    Deha deha(testing::tinyChip(16));
    CostModel cost(deha);
    // Huge AI => memory side never binds.
    OpWorkload w = simpleWorkload(deha.config(), 2, 1e9);
    Cycles l1 = cost.opLatency(w, OpAllocation{2, 0, 0});
    Cycles l2 = cost.opLatency(w, OpAllocation{4, 0, 0});
    EXPECT_NEAR(static_cast<double>(l1),
                2.0 * static_cast<double>(l2), 2.0);
}

TEST(CostModel, DuplicationCappedByMovingRows)
{
    Deha deha(testing::tinyChip(16));
    CostModel cost(deha);
    OpWorkload w = simpleWorkload(deha.config(), 2, 1e9, /*rows=*/1);
    // A single moving row cannot be split across copies.
    Cycles l1 = cost.opLatency(w, OpAllocation{2, 0, 0});
    Cycles l2 = cost.opLatency(w, OpAllocation{8, 0, 0});
    EXPECT_EQ(l1, l2);
    EXPECT_EQ(cost.maxUsefulComputeArrays(w), 2);
}

TEST(CostModel, MemoryArraysRaiseBandwidth)
{
    Deha deha(testing::tinyChip(16));
    CostModel cost(deha);
    // Low AI => memory side binds.
    OpWorkload w = simpleWorkload(deha.config(), 2, 0.5);
    Cycles l0 = cost.opLatency(w, OpAllocation{2, 0, 0});
    Cycles l4 = cost.opLatency(w, OpAllocation{2, 2, 2});
    EXPECT_LT(l4, l0);
    // Monotone non-increasing in memory arrays.
    Cycles prev = l0;
    for (s64 m = 1; m <= 8; ++m) {
        Cycles l = cost.opLatency(w, OpAllocation{2, m, 0});
        EXPECT_LE(l, prev);
        prev = l;
    }
}

TEST(CostModel, MemoryBenefitSaturatesAtDataFootprint)
{
    Deha deha(testing::tinyChip(16));
    CostModel cost(deha);
    OpWorkload w = simpleWorkload(deha.config(), 1, 0.5);
    w.inputBytes = deha.config().arrayMemoryBytes(); // exactly one array
    w.outputBytes = 0;
    w.weightBytes = 0; // keep total traffic at one array's worth
    w.macs = static_cast<s64>(w.inputBytes * 0.5);
    s64 cap = cost.maxUsefulMemoryArrays(w);
    EXPECT_EQ(cap, 1);
    Cycles at_cap = cost.opLatency(w, OpAllocation{1, cap, 0});
    Cycles beyond = cost.opLatency(w, OpAllocation{1, cap + 5, 0});
    EXPECT_EQ(at_cap, beyond);
}

TEST(CostModel, FixedOverheadCoversDynamicWeightsAndFu)
{
    Deha deha(testing::tinyChip());
    CostModel cost(deha);
    OpWorkload w = simpleWorkload(deha.config(), 1, 10.0);
    EXPECT_EQ(cost.fixedOverhead(w), 0);
    w.dynamicWeights = true;
    Cycles dyn = cost.fixedOverhead(w);
    EXPECT_GT(dyn, 0);
    w.vectorElems = 160; // 16 elems/cycle on the tiny chip
    EXPECT_EQ(cost.fixedOverhead(w), dyn + 10);
}

TEST(CostModel, SegmentLatencyIsPipelineMax)
{
    Deha deha(testing::tinyChip(16));
    CostModel cost(deha);
    std::vector<OpWorkload> ws = {simpleWorkload(deha.config(), 1, 1e9),
                                  simpleWorkload(deha.config(), 2, 1e9)};
    std::vector<OpAllocation> as = {OpAllocation{1, 0, 0},
                                    OpAllocation{2, 0, 0}};
    Cycles seg = cost.segmentLatency(ws, as);
    Cycles worst = std::max(cost.opLatency(ws[0], as[0]),
                            cost.opLatency(ws[1], as[1]));
    EXPECT_EQ(seg, worst);
}

TEST(CostModel, RewriteFollowsEq2)
{
    Deha deha(testing::tinyChip(16));
    CostModel cost(deha);
    std::vector<OpWorkload> ws = {simpleWorkload(deha.config(), 1, 10.0),
                                  simpleWorkload(deha.config(), 3, 10.0)};
    ws[0].opId = 0;
    ws[1].opId = 1;
    std::vector<OpAllocation> as = {OpAllocation{2, 0, 0},
                                    OpAllocation{3, 0, 0}};
    Cycles rw = cost.weightRewriteLatency(ws, as);
    EXPECT_EQ(rw, 3 * deha.config().writeArrayLatency());
    // Dynamic-weight ops do not contribute (written at runtime).
    ws[1].dynamicWeights = true;
    rw = cost.weightRewriteLatency(ws, as);
    EXPECT_EQ(rw, 2 * deha.config().writeArrayLatency());
}

TEST(CostModel, RewriteSumsSlicesOfOneOperator)
{
    // Slices of the same operator share its write port: array counts
    // sum inside Eq. 2's max.
    Deha deha(testing::tinyChip(16));
    CostModel cost(deha);
    std::vector<OpWorkload> ws = {simpleWorkload(deha.config(), 2, 10.0),
                                  simpleWorkload(deha.config(), 2, 10.0)};
    ws[0].opId = 7;
    ws[1].opId = 7;
    std::vector<OpAllocation> as = {OpAllocation{2, 0, 0},
                                    OpAllocation{2, 0, 0}};
    EXPECT_EQ(cost.weightRewriteLatency(ws, as),
              4 * deha.config().writeArrayLatency());
}

/**
 * Calibration property (DESIGN.md Sec. 7): sweeping the compute/memory
 * split on a 100-array chip, the optimum lands near 86% compute for
 * ResNet-like AI and near 10% for LLM-decode-like AI — the Fig. 1(b)
 * shape.
 */
class CalibrationSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>>
{
};

TEST_P(CalibrationSweep, OptimumRatioMatchesFig1b)
{
    auto [ai, lo, hi] = GetParam();
    Deha deha(ChipConfig::theoretical100());
    CostModel cost(deha);

    OpWorkload w;
    w.name = "sweep";
    w.weightTiles = 1; // duplication models the compute scaling
    w.utilization = 1.0;
    w.movingRows = 1 << 20;
    w.macs = 1 << 30;
    w.aiMacsPerByte = ai;
    w.inputBytes = static_cast<s64>(static_cast<double>(w.macs) / ai);
    w.outputBytes = 0;
    w.weightBytes = 0;

    s64 best_c = -1;
    Cycles best = kInfCycles;
    for (s64 c = 1; c < 100; ++c) {
        Cycles l = cost.opLatency(w, OpAllocation{c, 100 - c, 0});
        if (l < best) {
            best = l;
            best_c = c;
        }
    }
    double ratio = static_cast<double>(best_c) / 100.0;
    EXPECT_GE(ratio, lo) << "AI=" << ai;
    EXPECT_LE(ratio, hi) << "AI=" << ai;
}

INSTANTIATE_TEST_SUITE_P(
    PaperAnchors, CalibrationSweep,
    ::testing::Values(
        std::make_tuple(33.0, 0.70, 0.95),  // ResNet-50-like (AI/2 in MACs)
        std::make_tuple(1.0, 0.03, 0.20),   // LLaMA2-decode-like
        std::make_tuple(10.0, 0.30, 0.80))); // BERT-like middle ground

} // namespace
} // namespace cmswitch
